package datagen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pads/internal/dsl"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

func compileFile(t *testing.T, name string) *interp.Interp {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return compileSrc(t, string(data))
}

func compileSrc(t *testing.T, src string) *interp.Interp {
	t.Helper()
	prog, errs := dsl.Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	return interp.New(desc)
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRand(7)
	n := 200000
	sum := 0
	min, max := 1<<30, 0
	for i := 0; i < n; i++ {
		v := r.Geometric(5.5, 1, 156)
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	mean := float64(sum) / float64(n)
	if mean < 4.5 || mean > 6.5 {
		t.Errorf("geometric mean = %.2f, want ≈5.5", mean)
	}
	if min != 1 {
		t.Errorf("min = %d", min)
	}
	if max > 156 {
		t.Errorf("max = %d exceeds clamp", max)
	}
}

// TestSiriusPopulation is experiment E12: the generated file reproduces the
// section 7 statistics in scaled form, verified by actually parsing it.
func TestSiriusPopulation(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultSirius(5000)
	cfg.SortViolations = 2
	cfg.SyntaxErrors = 5
	st, err := Sirius(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 5000 || st.SortViolations != 2 || st.SyntaxErrors != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MinEvents != 1 || st.MaxEvents != 156 {
		t.Errorf("event extremes = %d..%d, want 1..156", st.MinEvents, st.MaxEvents)
	}
	mean := float64(st.Events) / float64(st.Records)
	if mean < 4.5 || mean > 6.5 {
		t.Errorf("mean events = %.2f, want ≈5.5", mean)
	}

	// Parse the generated file and count what the description flags.
	in := compileFile(t, "sirius.pads")
	s := padsrt.NewBytesSource(buf.Bytes())
	rr, err := in.NewRecordReader(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Header().PD().Nerr != 0 {
		t.Fatalf("header: %v", rr.Header().PD())
	}
	var sortBad, syntaxBad, clean int
	n := 0
	for rr.More() {
		rec := rr.Read()
		n++
		pd := rec.PD()
		switch {
		case pd.Nerr == 0:
			clean++
		case pd.ErrCode.Class() == padsrt.ClassSemantic:
			sortBad++
		default:
			syntaxBad++
		}
	}
	if n != 5000 {
		t.Fatalf("parsed records = %d", n)
	}
	if sortBad != 2 {
		t.Errorf("sort violations found = %d, want 2", sortBad)
	}
	if syntaxBad != 5 {
		t.Errorf("syntax errors found = %d, want 5", syntaxBad)
	}
	if clean != 5000-7 {
		t.Errorf("clean = %d", clean)
	}
}

func TestCLFGeneratedParses(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultCLF(2000)
	st, err := CLF(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(st.BadLengths) / float64(st.Records)
	if frac < 0.04 || frac > 0.09 {
		t.Errorf("bad-length fraction = %.4f, want ≈0.0667", frac)
	}

	in := compileFile(t, "clf.pads")
	s := padsrt.NewBytesSource(buf.Bytes())
	rr, err := in.NewRecordReader(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad, n := 0, 0
	for rr.More() {
		rec := rr.Read()
		if rec.PD().Nerr > 0 {
			bad++
		}
		n++
	}
	if n != 2000 {
		t.Fatalf("records = %d", n)
	}
	if bad != st.BadLengths {
		t.Errorf("parser found %d bad records, generator injected %d", bad, st.BadLengths)
	}
}

// The generic description-driven generator: generated data re-parses
// cleanly and the parsed value equals the generated one.
func TestGeneratorRoundTrip(t *testing.T) {
	src := `
Penum color_t { RED, GREEN, BLUE };
Punion id_t {
  Pip ip;
  Puint32 num;
};
Pstruct item_t {
  color_t color; '|';
  id_t id; '|';
  Popt Puint16 weight; '|';
  Pstring(:';':) name; ';';
  Pint32 delta;
};
Parray items_t {
  item_t[] : Psep (',') && Pterm (Peor);
};
Precord Pstruct row_t {
  Puint8 n; '#';
  items_t items;
};
Psource Parray rows_t { row_t[]; };
`
	in := compileSrc(t, src)
	for seed := uint64(1); seed <= 25; seed++ {
		g := NewGenerator(in.Desc, seed)
		data, err := g.GenerateSource()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := padsrt.NewBytesSource(data)
		v, err := in.ParseSource(s)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if v.PD().Nerr != 0 {
			t.Fatalf("seed %d: generated data does not re-parse cleanly: %v\n%s", seed, v.PD(), data)
		}
	}
}

func TestGeneratorHonorsConstraints(t *testing.T) {
	src := `
Ptypedef Puint16_FW(:3:) response_t : response_t x => { 100 <= x && x < 600 };
Precord Pstruct r_t { response_t code; };
Psource Parray rs_t { r_t[]; };
`
	in := compileSrc(t, src)
	g := NewGenerator(in.Desc, 9)
	for i := 0; i < 50; i++ {
		v, err := g.GenerateType("response_t")
		if err != nil {
			t.Fatal(err)
		}
		u := v.(*value.Uint)
		if u.Val < 100 || u.Val >= 600 {
			t.Errorf("constraint ignored: %d", u.Val)
		}
	}
}

func TestGeneratorFixedWidthArgs(t *testing.T) {
	src := `
Precord Pstruct r_t {
  Puint8 n : n > 0 && n < 9; '|';
  Pstring_FW(:n:) body;
};
Psource Parray rs_t { r_t[]; };
`
	in := compileSrc(t, src)
	g := NewGenerator(in.Desc, 3)
	for i := 0; i < 20; i++ {
		v, err := g.GenerateType("r_t")
		if err != nil {
			t.Fatal(err)
		}
		st := v.(*value.Struct)
		n := st.Field("n").(*value.Uint).Val
		body := st.Field("body").(*value.Str).Val
		if uint64(len(body)) != n {
			t.Errorf("body width %d != n %d", len(body), n)
		}
	}
}

func TestSpread(t *testing.T) {
	m := spread(3, 300)
	if len(m) != 3 {
		t.Errorf("spread count = %d", len(m))
	}
	if len(spread(0, 100)) != 0 || len(spread(5, 0)) != 0 {
		t.Error("degenerate spreads not empty")
	}
	if len(spread(10, 5)) > 5 {
		t.Error("spread exceeded n")
	}
}

// Section 9's "deviates from it in specified ways": corrupted records are
// flagged by the parser, intact ones keep parsing.
func TestCorruptorDeviations(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultSirius(400)
	cfg.SortViolations = 0
	cfg.SyntaxErrors = 0
	if _, err := Sirius(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	data, corrupted := Corruptor{Rate: 0.1, Seed: 5}.Corrupt(buf.Bytes())
	if corrupted == 0 {
		t.Fatal("nothing corrupted")
	}

	in := compileFile(t, "sirius.pads")
	s := padsrt.NewBytesSource(data)
	rr, err := in.NewRecordReader(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Header().PD().Nerr != 0 {
		t.Fatal("header must stay intact")
	}
	bad := 0
	n := 0
	for rr.More() {
		if rr.Read().PD().Nerr > 0 {
			bad++
		}
		n++
	}
	if n != 400 {
		t.Fatalf("records = %d", n)
	}
	// Every corruption lands in some record, but a flexible format
	// absorbs many physical deviations (a dropped byte inside a string
	// field, a truncation that still ends on a valid event pair), so only
	// a fraction surfaces as parse errors — itself a faithful property of
	// ad hoc formats. Demand a meaningful fraction and no false extras.
	if bad < corrupted/4 || bad > corrupted {
		t.Errorf("parser flagged %d of %d corrupted records", bad, corrupted)
	}
}

func TestCorruptorSpecificDeviation(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultSirius(100)
	cfg.SortViolations = 0
	cfg.SyntaxErrors = 0
	if _, err := Sirius(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	// MangleDigit only: a letter in a numeric field never parses, but a
	// mangled digit inside a *string* field (state names, order types) is
	// absorbed, so the caught fraction is high but not total.
	data, corrupted := Corruptor{Rate: 0.2, Deviations: []Deviation{MangleDigit}, Seed: 9}.Corrupt(buf.Bytes())
	in := compileFile(t, "sirius.pads")
	rr, err := in.NewRecordReader(padsrt.NewBytesSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for rr.More() {
		if rr.Read().PD().Nerr > 0 {
			bad++
		}
	}
	if bad == 0 || bad > corrupted {
		t.Errorf("flagged %d, corrupted %d", bad, corrupted)
	}
	if bad < corrupted/3 {
		t.Errorf("only %d of %d mangled records caught", bad, corrupted)
	}
}
