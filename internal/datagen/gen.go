package datagen

import (
	"fmt"

	"pads/internal/dsl"
	"pads/internal/expr"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/value"
)

// Generator produces random values conforming to a checked description —
// the section 9 "generate random data that conforms to a given
// specification" tool. Values are built as generic value trees and
// serialized through the interpreter's writer, so generation and parsing
// share one definition of the format.
type Generator struct {
	Desc *sema.Desc
	R    *Rand
	in   *interp.Interp
	// MaxArrayLen bounds generated unsized arrays (default 8).
	MaxArrayLen int
	// ConstraintRetries bounds rejection sampling against field and
	// typedef constraints (default 64 attempts).
	ConstraintRetries int
}

// NewGenerator builds a generator over desc.
func NewGenerator(desc *sema.Desc, seed uint64) *Generator {
	return &Generator{
		Desc:              desc,
		R:                 NewRand(seed | 1),
		in:                interp.New(desc),
		MaxArrayLen:       8,
		ConstraintRetries: 64,
	}
}

// GenerateSource produces one full instance of the description's Psource
// type, serialized to bytes.
func (g *Generator) GenerateSource() ([]byte, error) {
	v, err := g.GenerateType(g.Desc.Source.DeclName())
	if err != nil {
		return nil, err
	}
	w := g.in.NewWriter()
	return w.Append(nil, g.Desc.Source.DeclName(), v)
}

// GenerateType produces one random value of the named type.
func (g *Generator) GenerateType(name string) (value.Value, error) {
	d, ok := g.Desc.Types[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown type %s", name)
	}
	return g.genDecl(d, expr.NewEnv(nil))
}

func (g *Generator) genDecl(d dsl.Decl, env *expr.Env) (value.Value, error) {
	switch d := d.(type) {
	case *dsl.StructDecl:
		st := &value.Struct{Common: value.NewCommon(d.Name)}
		senv := expr.NewEnv(env)
		ev := g.in.Ev
		for _, it := range d.Items {
			if it.Lit != nil {
				continue
			}
			f := it.Field
			var fv value.Value
			var err error
			for try := 0; ; try++ {
				fv, err = g.genRef(f.Type, senv)
				if err != nil {
					return nil, err
				}
				if f.Constraint == nil || try >= g.ConstraintRetries {
					break
				}
				fe := expr.NewEnv(senv)
				fe.Bind(f.Name, expr.FromValue(fv))
				if ok, _ := ev.EvalPred(f.Constraint, fe); ok {
					break
				}
			}
			st.Names = append(st.Names, f.Name)
			st.Fields = append(st.Fields, fv)
			senv.Bind(f.Name, expr.FromValue(fv))
		}
		return st, nil
	case *dsl.UnionDecl:
		un := &value.Union{Common: value.NewCommon(d.Name)}
		if d.Switch != nil {
			// A switched union's branch is not free: the selector (already
			// generated, bound in env) dictates the case.
			sel, err := g.in.Ev.Eval(d.Switch.Selector, env)
			if err != nil {
				return nil, fmt.Errorf("datagen: union %s selector: %v", d.Name, err)
			}
			var chosen *dsl.Field
			var deflt *dsl.Field
			idx := 0
		cases:
			for i := range d.Switch.Cases {
				c := &d.Switch.Cases[i]
				if len(c.Values) == 0 {
					deflt = &c.Field
					continue
				}
				for _, vx := range c.Values {
					if vv, err := g.in.Ev.Eval(vx, env); err == nil && expr.EqualV(sel, vv) {
						chosen = &c.Field
						idx = i
						break cases
					}
				}
			}
			if chosen == nil {
				chosen = deflt
			}
			if chosen == nil {
				return nil, fmt.Errorf("datagen: union %s: selector matches no case and there is no Pdefault", d.Name)
			}
			bv, err := g.genRef(chosen.Type, env)
			if err != nil {
				return nil, err
			}
			un.Tag = chosen.Name
			un.TagIdx = idx
			un.Val = bv
			return un, nil
		}
		branches := d.Branches
		if len(branches) == 0 {
			return nil, fmt.Errorf("datagen: union %s has no branches", d.Name)
		}
		// Retry across branches until one satisfies its constraint.
		for try := 0; try < g.ConstraintRetries; try++ {
			i := g.R.Intn(len(branches))
			b := branches[i]
			bv, err := g.genRef(b.Type, env)
			if err != nil {
				return nil, err
			}
			if b.Constraint != nil {
				fe := expr.NewEnv(env)
				fe.Bind(b.Name, expr.FromValue(bv))
				if ok, _ := g.in.Ev.EvalPred(b.Constraint, fe); !ok {
					continue
				}
			}
			un.Tag = b.Name
			un.TagIdx = i
			un.Val = bv
			return un, nil
		}
		// Fall back to the first branch unconstrained.
		bv, err := g.genRef(branches[0].Type, env)
		if err != nil {
			return nil, err
		}
		un.Tag = branches[0].Name
		un.Val = bv
		return un, nil
	case *dsl.ArrayDecl:
		arr := &value.Array{Common: value.NewCommon(d.Name)}
		n := g.R.Range(0, g.MaxArrayLen)
		if d.MinSize != nil {
			if v, err := g.in.Ev.Eval(d.MinSize, env); err == nil {
				if lo, err := expr.ToInt(v); err == nil && int(lo) > 0 {
					n = int(lo)
				}
			}
		}
		if d.MaxSize != nil && d.MaxSize != d.MinSize {
			if v, err := g.in.Ev.Eval(d.MaxSize, env); err == nil {
				if hi, err := expr.ToInt(v); err == nil {
					n = g.R.Range(n, int(hi))
				}
			}
		}
		for i := 0; i < n; i++ {
			ev, err := g.genRef(d.Elem, env)
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, ev)
		}
		return arr, nil
	case *dsl.EnumDecl:
		i := g.R.Intn(len(d.Members))
		en := &value.Enum{Common: value.NewCommon(d.Name), Member: d.Members[i].Name, Index: i}
		return en, nil
	case *dsl.TypedefDecl:
		for try := 0; ; try++ {
			v, err := g.genRef(d.Base, env)
			if err != nil {
				return nil, err
			}
			if d.Constraint == nil || try >= g.ConstraintRetries {
				return v, nil
			}
			ce := expr.NewEnv(env)
			ce.Bind(d.VarName, expr.FromValue(v))
			if ok, _ := g.in.Ev.EvalPred(d.Constraint, ce); ok {
				return v, nil
			}
		}
	}
	return nil, fmt.Errorf("datagen: cannot generate %T", d)
}

func (g *Generator) genRef(tr dsl.TypeRef, env *expr.Env) (value.Value, error) {
	if tr.Opt {
		opt := &value.Opt{Common: value.NewCommon("Popt " + tr.Name)}
		if g.R.Bool(0.5) {
			inner := tr
			inner.Opt = false
			v, err := g.genRef(inner, env)
			if err != nil {
				return nil, err
			}
			opt.Present = true
			opt.Val = v
		}
		return opt, nil
	}
	if b := sema.LookupBase(tr.Name); b != nil {
		return g.genBase(b, tr, env)
	}
	d, ok := g.Desc.Types[tr.Name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown type %s", tr.Name)
	}
	// Bind declared parameters from the argument expressions.
	params := expr.NewEnv(nil)
	switch dd := d.(type) {
	case *dsl.StructDecl:
		g.bindArgs(params, dd.Params, tr.Args, env)
	case *dsl.UnionDecl:
		g.bindArgs(params, dd.Params, tr.Args, env)
	case *dsl.ArrayDecl:
		g.bindArgs(params, dd.Params, tr.Args, env)
	case *dsl.TypedefDecl:
		g.bindArgs(params, dd.Params, tr.Args, env)
	}
	return g.genDecl(d, params)
}

func (g *Generator) bindArgs(dst *expr.Env, params []dsl.Param, args []dsl.Expr, env *expr.Env) {
	for i, p := range params {
		if i >= len(args) {
			break
		}
		if v, err := g.in.Ev.Eval(args[i], env); err == nil {
			dst.Bind(p.Name, v)
		}
	}
}

func (g *Generator) genBase(b *sema.BaseInfo, tr dsl.TypeRef, env *expr.Env) (value.Value, error) {
	intArg := func(i int) int {
		if i >= len(tr.Args) {
			return 1
		}
		v, err := g.in.Ev.Eval(tr.Args[i], env)
		if err != nil {
			return 1
		}
		n, err := expr.ToInt(v)
		if err != nil || n < 0 {
			return 1
		}
		return int(n)
	}
	switch b.Kind {
	case sema.KChar:
		c := &value.Char{Common: value.NewCommon(b.Name)}
		c.Val = letters[g.R.Intn(26)]
		return c, nil
	case sema.KUint:
		u := &value.Uint{Common: value.NewCommon(b.Name), Bits: b.Bits}
		if b.FW {
			w := intArg(0)
			// Must fit both the field width and the bit width.
			max := uint64(1)
			for i := 0; i < w && max < 1e18; i++ {
				max *= 10
			}
			u.Val = g.R.Uint64() % max
			if lim := maxOfBits(b.Bits); u.Val > lim {
				u.Val %= lim + 1
			}
		} else {
			u.Val = g.R.Uint64() & maxOfBits(b.Bits)
		}
		return u, nil
	case sema.KInt:
		iv := &value.Int{Common: value.NewCommon(b.Name), Bits: b.Bits}
		switch b.Coding {
		case "bcd", "zoned":
			digits := intArg(0)
			mod := int64(1)
			for i := 0; i < digits && mod < int64(1e17); i++ {
				mod *= 10
			}
			iv.Val = int64(g.R.Uint64()%uint64(mod)) - int64(uint64(mod)/2)
			if iv.Val < 0 && b.Coding == "zoned" {
				// zoned handles signs; keep as is
			}
		default:
			iv.Val = int64(g.R.Uint64()&maxOfBits(b.Bits)) / 2
			if g.R.Bool(0.3) {
				iv.Val = -iv.Val
			}
		}
		return iv, nil
	case sema.KFloat:
		f := &value.Float{Common: value.NewCommon(b.Name), Bits: b.Bits}
		f.Val = float64(g.R.Intn(100000)) / 100
		return f, nil
	case sema.KString:
		s := &value.Str{Common: value.NewCommon(b.Name)}
		switch b.Name {
		case "Pstring_FW":
			s.Val = g.R.Alnum(intArg(0), intArg(0))
		case "Phostname":
			s.Val = g.R.Word(2, 6) + "." + g.R.Pick(clfDomains)
		case "Pzip":
			s.Val = g.R.Digits(5)
		case "Pstring_ME", "Pstring_SE":
			// Without a regexp synthesizer, emit a plain word; the
			// caller's description decides whether it matches.
			s.Val = g.R.Word(1, 8)
		default:
			s.Val = g.R.Alnum(1, 12)
		}
		return s, nil
	case sema.KDate:
		d := &value.Date{Common: value.NewCommon(b.Name)}
		d.Sec = int64(800000000 + g.R.Intn(400000000))
		d.Raw = fmt.Sprintf("%d", d.Sec)
		return d, nil
	case sema.KIP:
		ip := &value.IP{Common: value.NewCommon(b.Name)}
		ip.Val = uint32(g.R.Uint64())
		// Keep each octet in 1..254 so the text form re-parses as an IP.
		ip.Val = ip.Val&0x7F7F7F7F | 0x01010101
		return ip, nil
	case sema.KVoid:
		return &value.Void{Common: value.NewCommon(b.Name)}, nil
	}
	return nil, fmt.Errorf("datagen: cannot generate base %s", b.Name)
}

func maxOfBits(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}

var _ = padsrt.ErrNone // reserved for error-injection extensions
