package datagen

import (
	"bufio"
	"fmt"
	"io"
)

// CLFConfig parameterizes the Common Log Format generator.
type CLFConfig struct {
	// Records is the number of log lines to emit.
	Records int
	// BadLengthFrac is the fraction of records whose length field holds
	// the undocumented '-' the paper's accumulator uncovered (section
	// 5.2 reports 6.666% on the studied data set).
	BadLengthFrac float64
	// HostFrac is the fraction of clients logged as hostnames rather
	// than IP addresses.
	HostFrac float64
	Seed     uint64
}

// DefaultCLF mirrors the section 5.2 data set's error population.
func DefaultCLF(records int) CLFConfig {
	return CLFConfig{Records: records, BadLengthFrac: 0.06666, HostFrac: 0.3, Seed: 1}
}

// CLFStats reports what was generated.
type CLFStats struct {
	Records    int
	BadLengths int
	Bytes      int64
}

var clfMethods = []string{"GET", "GET", "GET", "GET", "POST", "HEAD", "PUT"}
var clfPaths = []string{
	"/tk/p.txt", "/index.html", "/images/logo.gif", "/scpt/confirm",
	"/cgi-bin/query", "/docs/spec.ps", "/", "/staff/home.html",
}
var clfDomains = []string{"aol.com", "att.com", "research.att.com", "example.org", "uni.edu"}

// The top length values roughly follow the section 5.2 report: a small set
// of hot sizes covers most responses with a long tail.
var clfHotLengths = []string{"3082", "170", "43", "9372", "1425", "518", "1082", "1367", "1027", "1277"}

// CLF writes cfg.Records log lines to w.
func CLF(w io.Writer, cfg CLFConfig) (CLFStats, error) {
	r := NewRand(cfg.Seed | 1)
	bw := bufio.NewWriterSize(w, 1<<16)
	var st CLFStats
	cw := &countWriter{w: bw}
	for i := 0; i < cfg.Records; i++ {
		// Client: IP or hostname.
		var client string
		if r.Bool(cfg.HostFrac) {
			client = fmt.Sprintf("%s%d.%s", r.Word(2, 5), r.Intn(100), r.Pick(clfDomains))
		} else {
			client = fmt.Sprintf("%d.%d.%d.%d", r.Range(1, 223), r.Intn(256), r.Intn(256), r.Range(1, 254))
		}
		// Timestamps walk forward through October 1997.
		day := 1 + i%28
		hh, mm, ss := r.Intn(24), r.Intn(60), r.Intn(60)
		date := fmt.Sprintf("%02d/Oct/1997:%02d:%02d:%02d -0700", day, hh, mm, ss)

		meth := r.Pick(clfMethods)
		uri := r.Pick(clfPaths)
		minor := r.Intn(2)
		resp := r.Pick([]string{"200", "200", "200", "200", "304", "404", "302", "500"})

		length := r.Pick(clfHotLengths)
		if r.Bool(0.4) {
			length = fmt.Sprintf("%d", r.Range(35, 248591))
		}
		if r.Bool(cfg.BadLengthFrac) {
			length = "-"
			st.BadLengths++
		}

		fmt.Fprintf(cw, "%s - - [%s] \"%s %s HTTP/1.%d\" %s %s\n",
			client, date, meth, uri, minor, resp, length)
		st.Records++
	}
	if err := bw.Flush(); err != nil {
		return st, err
	}
	st.Bytes = cw.n
	return st, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
