package codegen

import (
	"fmt"
	"strings"

	"pads/internal/dsl"
	"pads/internal/sema"
)

// Auxiliary per-type artifacts: Write (the original form printer,
// write2io in Figure 6), Verify (re-checks semantic constraints on an
// in-memory value, used by the Figure 7 program after repairs), and ToValue
// (bridges generated representations into the generic value model so the
// accumulator/formatting/XML/query tools work over compiled data).

// appendLiteral emits dst appends for a literal.
func (g *gen) appendLiteral(l *dsl.Literal, depth int) {
	ind := strings.Repeat("\t", depth)
	switch l.Kind {
	case dsl.CharLit:
		g.p("%sdst = append(dst, %q)", ind, l.Char)
	case dsl.StrLit:
		g.p("%sdst = append(dst, %q...)", ind, l.Str)
	default:
		// Regexp literals have no canonical text; Peor/Peof are framing.
	}
}

// writeRef emits dst appends for one value of tr.
func (g *gen) writeRef(tr dsl.TypeRef, repExpr string, sc *scope, depth int) {
	ind := strings.Repeat("\t", depth)
	if tr.Opt {
		inner := tr
		inner.Opt = false
		g.p("%sif %s.Present {", ind, repExpr)
		g.writeRef(inner, repExpr+".Val", sc, depth+1)
		g.p("%s}", ind)
		return
	}
	if b := sema.LookupBase(tr.Name); b != nil {
		g.writeBase(b, tr, repExpr, sc, depth)
		return
	}
	d := g.desc.Types[tr.Name]
	args := g.argExprs(tr, sc)
	switch d.(type) {
	case *dsl.EnumDecl:
		g.p("%sdst = append(dst, %s.String()...)", ind, repExpr)
	default:
		g.p("%sdst = Write%s(dst, &%s%s)", ind, GoName(tr.Name), repExpr, args)
	}
}

func (g *gen) writeBase(b *sema.BaseInfo, tr dsl.TypeRef, repExpr string, sc *scope, depth int) {
	ind := strings.Repeat("\t", depth)
	intArg := func(i int) string {
		code, t := g.expr(tr.Args[i], sc)
		return "int(" + asNum(code, t) + ")"
	}
	switch b.Kind {
	case sema.KChar:
		if b.Coding == "e" {
			g.p("%sdst = append(dst, padsrt.ASCIIToEBCDIC(%s))", ind, repExpr)
		} else {
			g.p("%sdst = append(dst, %s)", ind, repExpr)
		}
	case sema.KUint:
		switch {
		case b.FW:
			g.p("%sdst = padsrt.AppendUintFW(dst, uint64(%s), %s)", ind, repExpr, intArg(0))
		case b.Coding == "b":
			g.p("%sdst = padsrt.AppendBUint(dst, uint64(%s), %d, Order)", ind, repExpr, b.Bits/8)
		case b.Coding == "e":
			g.p("%sdst = padsrt.AppendEUint(dst, uint64(%s))", ind, repExpr)
		default:
			g.p("%sdst = padsrt.AppendUint(dst, uint64(%s))", ind, repExpr)
		}
	case sema.KInt:
		switch {
		case b.Coding == "bcd":
			g.p("%sdst = padsrt.WriteBCD(dst, int64(%s), %s)", ind, repExpr, intArg(0))
		case b.Coding == "zoned":
			g.p("%sdst = padsrt.WriteZoned(dst, int64(%s), %s)", ind, repExpr, intArg(0))
		case b.FW:
			g.p("%sdst = padsrt.AppendIntFW(dst, int64(%s), %s)", ind, repExpr, intArg(0))
		case b.Coding == "b":
			g.p("%sdst = padsrt.AppendBUint(dst, uint64(%s), %d, Order)", ind, repExpr, b.Bits/8)
		default:
			g.p("%sdst = padsrt.AppendInt(dst, int64(%s))", ind, repExpr)
		}
	case sema.KFloat:
		g.p("%sdst = padsrt.AppendFloat(dst, float64(%s), %d)", ind, repExpr, b.Bits)
	case sema.KString:
		if b.Coding == "e" {
			g.p("%sdst = append(dst, padsrt.StringToEBCDICBytes(%s)...)", ind, repExpr)
		} else {
			g.p("%sdst = append(dst, %s...)", ind, repExpr)
		}
	case sema.KDate:
		g.p("%sdst = padsrt.AppendDate(dst, %s)", ind, repExpr)
	case sema.KIP:
		g.p("%sdst = append(dst, padsrt.FormatIP(%s)...)", ind, repExpr)
	case sema.KVoid:
		// nothing on the wire
	}
}

// toValueExpr renders the ToValue conversion of one reference.
func (g *gen) toValueExpr(tr dsl.TypeRef, repExpr, pdExpr string) string {
	if tr.Opt {
		inner := tr
		inner.Opt = false
		// The inner descriptor was discarded at parse time (a present
		// optional is clean by construction); bridge with a zero pd of
		// the right shape.
		innerPD := "padsrt.PD{}"
		if g.compoundRef(inner) {
			innerPD = GoName(inner.Name) + "PD{}"
		}
		innerConv := g.toValueExpr(inner, repExpr+".Val", innerPD)
		return fmt.Sprintf("func() value.Value { if %s.Present { return value.NewOpt(true, %s, %q, %s) }; return value.NewOpt(false, nil, %q, %s) }()",
			repExpr, innerConv, "Popt "+tr.Name, pdExpr, "Popt "+tr.Name, pdExpr)
	}
	if b := sema.LookupBase(tr.Name); b != nil {
		switch b.Kind {
		case sema.KChar:
			return fmt.Sprintf("value.NewChar(%s, %q, %s)", repExpr, b.Name, pdExpr)
		case sema.KUint:
			return fmt.Sprintf("value.NewUint(uint64(%s), %d, %q, %s)", repExpr, b.Bits, b.Name, pdExpr)
		case sema.KInt:
			return fmt.Sprintf("value.NewInt(int64(%s), %d, %q, %s)", repExpr, b.Bits, b.Name, pdExpr)
		case sema.KFloat:
			return fmt.Sprintf("value.NewFloat(float64(%s), %d, %q, %s)", repExpr, b.Bits, b.Name, pdExpr)
		case sema.KString:
			return fmt.Sprintf("value.NewStr(%s, %q, %s)", repExpr, b.Name, pdExpr)
		case sema.KDate:
			return fmt.Sprintf("value.NewDate(%s.Sec, %s.Raw, %q, %s)", repExpr, repExpr, b.Name, pdExpr)
		case sema.KIP:
			return fmt.Sprintf("value.NewIP(%s, %q, %s)", repExpr, b.Name, pdExpr)
		default:
			return fmt.Sprintf("value.NewVoid(%q, %s)", b.Name, pdExpr)
		}
	}
	switch g.desc.Types[tr.Name].(type) {
	case *dsl.EnumDecl, *dsl.TypedefDecl:
		return fmt.Sprintf("%sToValue(&%s, %s)", GoName(tr.Name), repExpr, pdExpr)
	default:
		return fmt.Sprintf("%sToValue(&%s, &%s)", GoName(tr.Name), repExpr, pdExpr)
	}
}

// verifyRef renders the Verify call (or "true") for a reference.
func (g *gen) verifyRef(tr dsl.TypeRef, repExpr string, sc *scope) string {
	if tr.Opt {
		inner := tr
		inner.Opt = false
		innerV := g.verifyRef(inner, repExpr+".Val", sc)
		if innerV == "true" {
			return "true"
		}
		return fmt.Sprintf("(!%s.Present || %s)", repExpr, innerV)
	}
	if isBase(tr) {
		return "true"
	}
	d := g.desc.Types[tr.Name]
	switch d.(type) {
	case *dsl.EnumDecl:
		return "true"
	default:
		return fmt.Sprintf("Verify%s(&%s%s)", GoName(tr.Name), repExpr, g.argExprs(tr, sc))
	}
}

// ---- struct aux ----

func (g *gen) emitStructAux(d *dsl.StructDecl) {
	name := GoName(d.Name)
	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}

	// Write.
	g.p("// Write%s appends the original wire form of rep.", name)
	g.p("func Write%s(dst []byte, rep *%s%s) []byte {", name, name, g.paramList(d.Params))
	wsc := newScope(sc)
	for _, it := range d.Items {
		if it.Lit != nil {
			g.appendLiteral(it.Lit, 1)
			continue
		}
		f := it.Field
		g.writeRef(f.Type, "rep."+goFieldName(f.Name), wsc, 1)
		wsc.bind(f.Name, "rep."+goFieldName(f.Name), g.tyOfRef(f.Type))
	}
	if d.IsRecord {
		g.p("\tdst = append(dst, '\\n')")
	}
	g.p("\treturn dst")
	g.p("}")
	g.p("")

	// Verify.
	g.p("// Verify%s re-checks every semantic constraint on rep.", name)
	g.p("func Verify%s(rep *%s%s) bool {", name, name, g.paramList(d.Params))
	vsc := newScope(sc)
	for _, it := range d.Items {
		if it.Field == nil {
			continue
		}
		f := it.Field
		fn := goFieldName(f.Name)
		vsc.bind(f.Name, "rep."+fn, g.tyOfRef(f.Type))
		if sub := g.verifyRef(f.Type, "rep."+fn, vsc); sub != "true" {
			g.p("\tif !%s {", sub)
			g.p("\t\treturn false")
			g.p("\t}")
		}
		if f.Constraint != nil {
			cond, _ := g.expr(f.Constraint, vsc)
			g.p("\tif !(%s) {", cond)
			g.p("\t\treturn false")
			g.p("\t}")
		}
	}
	if d.Where != nil {
		cond, _ := g.expr(d.Where, vsc)
		g.p("\tif !(%s) {", cond)
		g.p("\t\treturn false")
		g.p("\t}")
	}
	g.p("\treturn true")
	g.p("}")
	g.p("")

	// ToValue.
	g.p("// %sToValue bridges rep into the generic value model.", name)
	g.p("func %sToValue(rep *%s, pd *%sPD) value.Value {", name, name, name)
	g.p("\tst := &value.Struct{Common: value.Common{Pd: pd.PD, Type: %q}}", d.Name)
	for _, it := range d.Items {
		if it.Field == nil {
			continue
		}
		f := it.Field
		fn := goFieldName(f.Name)
		g.p("\tst.Names = append(st.Names, %q)", f.Name)
		g.p("\tst.Fields = append(st.Fields, %s)", g.toValueExpr(f.Type, "rep."+fn, "pd."+fn))
	}
	g.p("\treturn st")
	g.p("}")
	g.p("")
}

// ---- union aux ----

func (g *gen) emitUnionAux(d *dsl.UnionDecl, branches []dsl.Field) {
	name := GoName(d.Name)
	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}

	g.p("// Write%s appends the original wire form of rep.", name)
	g.p("func Write%s(dst []byte, rep *%s%s) []byte {", name, name, g.paramList(d.Params))
	g.p("\tswitch rep.Tag {")
	for i := range branches {
		g.p("\tcase %sTag%s:", name, GoName(branches[i].Name))
		g.writeRef(branches[i].Type, "rep."+goFieldName(branches[i].Name), sc, 2)
	}
	g.p("\t}")
	if d.IsRecord {
		g.p("\tdst = append(dst, '\\n')")
	}
	g.p("\treturn dst")
	g.p("}")
	g.p("")

	g.p("// Verify%s re-checks every semantic constraint on rep.", name)
	g.p("func Verify%s(rep *%s%s) bool {", name, name, g.paramList(d.Params))
	g.p("\tswitch rep.Tag {")
	for i := range branches {
		b := &branches[i]
		fn := goFieldName(b.Name)
		g.p("\tcase %sTag%s:", name, GoName(b.Name))
		bsc := newScope(sc)
		bsc.bind(b.Name, "rep."+fn, g.tyOfRef(b.Type))
		if sub := g.verifyRef(b.Type, "rep."+fn, bsc); sub != "true" {
			g.p("\t\tif !%s {", sub)
			g.p("\t\t\treturn false")
			g.p("\t\t}")
		}
		if b.Constraint != nil {
			cond, _ := g.expr(b.Constraint, bsc)
			g.p("\t\tif !(%s) {", cond)
			g.p("\t\t\treturn false")
			g.p("\t\t}")
		}
		g.p("\t\treturn true")
	}
	g.p("\t}")
	g.p("\treturn false")
	g.p("}")
	g.p("")

	g.p("// %sToValue bridges rep into the generic value model.", name)
	g.p("func %sToValue(rep *%s, pd *%sPD) value.Value {", name, name, name)
	g.p("\tun := &value.Union{Common: value.Common{Pd: pd.PD, Type: %q}}", d.Name)
	g.p("\tswitch rep.Tag {")
	for i := range branches {
		b := &branches[i]
		fn := goFieldName(b.Name)
		g.p("\tcase %sTag%s:", name, GoName(b.Name))
		g.p("\t\tun.Tag = %q", b.Name)
		g.p("\t\tun.TagIdx = %d", i)
		g.p("\t\tun.Val = %s", g.toValueExpr(b.Type, "rep."+fn, "pd."+fn))
	}
	g.p("\t}")
	g.p("\treturn un")
	g.p("}")
	g.p("")
}

// ---- array aux ----

func (g *gen) emitArrayAux(d *dsl.ArrayDecl) {
	name := GoName(d.Name)
	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}

	g.p("// Write%s appends the original wire form of rep.", name)
	g.p("func Write%s(dst []byte, rep *%s%s) []byte {", name, name, g.paramList(d.Params))
	g.p("\tfor i := range rep.Elems {")
	if d.Sep != nil {
		g.p("\t\tif i > 0 {")
		g.appendLiteral(d.Sep, 3)
		g.p("\t\t}")
	}
	g.writeRef(d.Elem, "rep.Elems[i]", sc, 2)
	g.p("\t}")
	if d.Term != nil && (d.Term.Kind == dsl.CharLit || d.Term.Kind == dsl.StrLit) {
		g.appendLiteral(d.Term, 1)
	}
	if d.IsRecord {
		g.p("\tdst = append(dst, '\\n')")
	}
	g.p("\treturn dst")
	g.p("}")
	g.p("")

	g.p("// Verify%s re-checks every semantic constraint on rep.", name)
	g.p("func Verify%s(rep *%s%s) bool {", name, name, g.paramList(d.Params))
	elemVerify := g.verifyRef(d.Elem, "rep.Elems[i]", sc)
	if elemVerify != "true" {
		g.p("\tfor i := range rep.Elems {")
		g.p("\t\tif !%s {", elemVerify)
		g.p("\t\t\treturn false")
		g.p("\t\t}")
		g.p("\t}")
	}
	seqSc := newScope(sc)
	seqSc.bind("elts", "rep.Elems", ty{k: sema.KArray, name: d.Name, elem: tyPtr(g.tyOfRef(d.Elem))})
	seqSc.bind("length", "int64(len(rep.Elems))", tyNum)
	if d.Where != nil {
		cond, _ := g.expr(d.Where, seqSc)
		g.p("\tif !(%s) {", cond)
		g.p("\t\treturn false")
		g.p("\t}")
	}
	g.p("\treturn true")
	g.p("}")
	g.p("")

	g.p("// %sToValue bridges rep into the generic value model.", name)
	g.p("func %sToValue(rep *%s, pd *%sPD) value.Value {", name, name, name)
	g.p("\tarr := &value.Array{Common: value.Common{Pd: pd.PD, Type: %q}}", d.Name)
	g.p("\tfor i := range rep.Elems {")
	g.p("\t\tvar epd %s", g.pdOf(d.Elem))
	g.p("\t\tif i < len(pd.Elems) {")
	g.p("\t\t\tepd = pd.Elems[i]")
	g.p("\t\t}")
	var conv string
	if g.compoundRef(d.Elem) {
		conv = g.toValueExpr(d.Elem, "rep.Elems[i]", "epd")
		// toValueExpr renders "&epd" for compound pds; adjust.
		conv = strings.Replace(conv, "&epd", "&epd", 1)
	} else {
		conv = g.toValueExpr(d.Elem, "rep.Elems[i]", "epd")
	}
	g.p("\t\tarr.Elems = append(arr.Elems, %s)", conv)
	g.p("\t}")
	g.p("\treturn arr")
	g.p("}")
	g.p("")
}

// ---- enum / typedef aux ----

func (g *gen) emitEnumAux(d *dsl.EnumDecl) {
	name := GoName(d.Name)
	g.p("// %sToValue bridges rep into the generic value model.", name)
	g.p("func %sToValue(rep *%s, pd padsrt.PD) value.Value {", name, name)
	g.p("\treturn value.NewEnum(%q, rep.String(), int(*rep), pd)", d.Name)
	g.p("}")
	g.p("")
}

func (g *gen) emitTypedefAux(d *dsl.TypedefDecl) {
	name := GoName(d.Name)
	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}
	g.p("// Write%s appends the original wire form of rep.", name)
	g.p("func Write%s(dst []byte, rep *%s%s) []byte {", name, name, g.paramList(d.Params))
	g.writeRef(d.Base, "(*rep)", sc, 1)
	g.p("\treturn dst")
	g.p("}")
	g.p("")
	g.p("// Verify%s re-checks the typedef constraint on rep.", name)
	g.p("func Verify%s(rep *%s%s) bool {", name, name, g.paramList(d.Params))
	if d.Constraint != nil {
		csc := newScope(sc)
		csc.bind(d.VarName, "(*rep)", g.tyOfRef(d.Base))
		cond, _ := g.expr(d.Constraint, csc)
		g.p("\treturn %s", cond)
	} else {
		g.p("\treturn true")
	}
	g.p("}")
	g.p("")
	g.p("// %sToValue bridges rep into the generic value model.", name)
	g.p("func %sToValue(rep *%s, pd padsrt.PD) value.Value {", name, name)
	g.p("\tv := %s", g.toValueExpr(d.Base, "(*rep)", "pd"))
	g.p("\treturn v")
	g.p("}")
	g.p("")
}
