package codegen

import (
	"fmt"
	"strings"

	"pads/internal/dsl"
	"pads/internal/ir"
	"pads/internal/sema"
)

// pdOf returns the PD struct type name for a type reference ("padsrt.PD"
// for base types, optionals, enums, and typedefs).
func (g *gen) pdOf(tr dsl.TypeRef) string {
	if tr.Opt || isBase(tr) {
		return "padsrt.PD"
	}
	switch g.desc.Types[tr.Name].(type) {
	case *dsl.EnumDecl, *dsl.TypedefDecl:
		return "padsrt.PD"
	}
	return GoName(tr.Name) + "PD"
}

// maskOf returns the mask type for a type reference.
func (g *gen) maskOf(tr dsl.TypeRef) string { return g.maskType(tr) }

// compoundRef reports whether a reference needs struct-style mask/pd.
func (g *gen) compoundRef(tr dsl.TypeRef) bool {
	if tr.Opt || isBase(tr) {
		return false
	}
	switch g.desc.Types[tr.Name].(type) {
	case *dsl.StructDecl, *dsl.UnionDecl, *dsl.ArrayDecl:
		return true
	}
	return false
}

// pdHeader renders the expression for the padsrt.PD header of a field's pd.
func (g *gen) pdHeader(tr dsl.TypeRef, pdExpr string) string {
	if g.compoundRef(tr) {
		return pdExpr + ".PD"
	}
	return pdExpr
}

// maskCheck renders the DoCheck() test for a field's mask expression.
func (g *gen) maskCheck(tr dsl.TypeRef, mExpr string) string {
	if g.compoundRef(tr) {
		return g.doCheckExpr(mExpr + ".CompoundLevel")
	}
	return g.doCheckExpr(mExpr)
}

// maskSet renders the DoSet() test for a field's mask expression.
func (g *gen) maskSet(tr dsl.TypeRef, mExpr string) string {
	if g.compoundRef(tr) {
		return g.doSetExpr(mExpr + ".CompoundLevel")
	}
	return g.doSetExpr(mExpr)
}

// matchLitID renders a match call for a pooled IR literal.
func (g *gen) matchLitID(id ir.LitID) string {
	l := &g.prog.Lits[id]
	switch l.Kind {
	case dsl.CharLit:
		return fmt.Sprintf("padsrt.MatchChar(s, %q)", l.Char)
	case dsl.StrLit:
		return fmt.Sprintf("padsrt.MatchString(s, %q)", l.Str)
	case dsl.RegexpLit:
		return fmt.Sprintf("padsrt.MatchRegexp(s, %s)", g.reVar(l.Str))
	case dsl.EORLit:
		return "padsrt.MatchEOR(s)"
	default:
		return "padsrt.MatchEOF(s)"
	}
}

// argInt renders a folded IR argument as an int expression: constants fold
// to literals, everything else evaluates the pooled expression.
func (g *gen) argInt(a ir.Arg, sc *scope) string {
	if a.IsConst {
		return fmt.Sprintf("%d", a.Const)
	}
	code, t := g.expr(g.prog.Exprs[a.Expr], sc)
	return "int(" + asNum(code, t) + ")"
}

// argByte renders a folded IR argument as a byte expression.
func (g *gen) argByte(a ir.Arg, sc *scope) string {
	if a.IsConst {
		return fmt.Sprintf("%q", byte(a.Const))
	}
	code, t := g.expr(g.prog.Exprs[a.Expr], sc)
	return "byte(" + asNum(code, t) + ")"
}

// readCall renders the call that parses one value of the IR node nid into
// target, using the given mask and pd expressions. tr supplies the Go-level
// type names the IR does not carry; uniq makes scratch names unique.
func (g *gen) readCall(nid ir.NodeID, tr dsl.TypeRef, target, mExpr, pdExpr string, sc *scope, depth int, uniq string) {
	ind := strings.Repeat("\t", depth)
	n := &g.prog.Nodes[nid]
	if n.Op == ir.OpOpt {
		inner := tr
		inner.Opt = false
		g.p("%s%s = padsrt.PD{}", ind, pdExpr)
		// Trial cost was folded at lowering time: an atomic inner type
		// (ir.FAtomic) consumes nothing on failure so the trial needs no
		// checkpoint, and a rewindable one (ir.FRewind) only advances the
		// cursor in-record so a Mark/Rewind pair suffices — the same
		// elisions the VM applies.
		atomic := g.prog.Nodes[n.A].Flags&ir.FAtomic != 0
		rewind := g.prog.Nodes[n.A].Flags&ir.FRewind != 0
		switch {
		case atomic:
		case rewind:
			g.p("%smark%s := s.Mark()", ind, uniq)
		default:
			g.p("%ss.Checkpoint()", ind)
		}
		g.p("%s{", ind)
		// The inner pd is scoped locally: an absent optional is clean.
		g.p("%s\tvar optPD%s %s", ind, uniq, g.pdOf(inner))
		innerMask := mExpr
		innerPD := "optPD" + uniq
		if g.compoundRef(inner) {
			// Build a full-checking mask for the inner compound from
			// the field-level scalar mask.
			g.p("%s\toptM%s := New%sMask(%s)", ind, uniq, GoName(inner.Name), mExpr)
			innerMask = "optM" + uniq
		}
		g.readCallNonOpt(n.A, inner, target+".Val", innerMask, innerPD, sc, depth+1, uniq+"i")
		switch {
		case atomic:
			g.p("%s\t%s.Present = %s.Nerr == 0", ind, target, g.pdHeader(inner, innerPD))
		case rewind:
			g.p("%s\tif %s.Nerr == 0 {", ind, g.pdHeader(inner, innerPD))
			g.p("%s\t\t%s.Present = true", ind, target)
			g.p("%s\t} else {", ind)
			g.p("%s\t\ts.Rewind(mark%s)", ind, uniq)
			g.p("%s\t\t%s.Present = false", ind, target)
			g.p("%s\t}", ind)
		default:
			g.p("%s\tif %s.Nerr == 0 {", ind, g.pdHeader(inner, innerPD))
			g.p("%s\t\ts.Commit()", ind)
			g.p("%s\t\t%s.Present = true", ind, target)
			g.p("%s\t} else {", ind)
			g.p("%s\t\ts.Restore()", ind)
			g.p("%s\t\t%s.Present = false", ind, target)
			g.p("%s\t}", ind)
		}
		g.p("%s}", ind)
		return
	}
	g.readCallNonOpt(nid, tr, target, mExpr, pdExpr, sc, depth, uniq)
}

func (g *gen) readCallNonOpt(nid ir.NodeID, tr dsl.TypeRef, target, mExpr, pdExpr string, sc *scope, depth int, uniq string) {
	ind := strings.Repeat("\t", depth)
	n := &g.prog.Nodes[nid]
	if n.Op == ir.OpBase {
		g.readBase(n, target, mExpr, pdExpr, sc, depth, uniq)
		return
	}
	// OpCall: a reference to a declared type.
	args := g.argExprs(tr, sc)
	switch g.desc.Types[tr.Name].(type) {
	case *dsl.EnumDecl, *dsl.TypedefDecl:
		g.p("%sRead%s(s, %s, &%s, &%s%s)", ind, GoName(tr.Name), mExpr, pdExpr, target, args)
	default:
		mRef := "&" + mExpr
		if strings.HasPrefix(mExpr, "optM") || strings.HasPrefix(mExpr, "elemM") {
			mRef = mExpr // already a pointer
		}
		g.p("%sRead%s(s, %s, &%s, &%s%s)", ind, GoName(tr.Name), mRef, pdExpr, target, args)
	}
}

// readBase emits a base-type read into target, driven by the lowered
// BaseSpec: the registry dispatch (kind × coding × fixed-width) and constant
// argument folding happened once at ir.Lower time, shared with the VM's
// execBase table.
func (g *gen) readBase(n *ir.Node, target, mExpr, pdExpr string, sc *scope, depth int, uniq string) {
	ind := strings.Repeat("\t", depth)
	spec := &g.prog.Bases[n.A]
	v := "v" + uniq
	c := "c" + uniq

	g.p("%s%s = padsrt.PD{}", ind, pdExpr)
	g.p("%s{", ind)
	if spec.BadParam {
		// Statically malformed reference: parsing yields ErrBadParam,
		// matching the interpreter.
		g.p("%s\t%s.SetError(padsrt.ErrBadParam, s.LocHere())", ind, pdExpr)
		g.p("%s}", ind)
		return
	}

	var call, conv string
	switch spec.Read {
	case ir.RChar:
		call, conv = "padsrt.ReadChar(s)", v
	case ir.RAChar:
		call, conv = "padsrt.ReadAChar(s)", v
	case ir.REChar:
		call, conv = "padsrt.ReadEChar(s)", v
	case ir.RBChar:
		call, conv = "padsrt.ReadBChar(s)", v
	case ir.RUint:
		call = fmt.Sprintf("padsrt.ReadUint(s, %d)", spec.Bits)
	case ir.RAUint:
		call = fmt.Sprintf("padsrt.ReadAUint(s, %d)", spec.Bits)
	case ir.REUint:
		call = fmt.Sprintf("padsrt.ReadEUint(s, %d)", spec.Bits)
	case ir.RBUint:
		call = fmt.Sprintf("padsrt.ReadBUint(s, %d)", spec.Bits/8)
	case ir.RUintFW:
		call = fmt.Sprintf("padsrt.ReadUintFW(s, %s, %d)", g.argInt(spec.Width, sc), spec.Bits)
	case ir.RAUintFW:
		call = fmt.Sprintf("padsrt.ReadAUintFW(s, %s, %d)", g.argInt(spec.Width, sc), spec.Bits)
	case ir.RInt:
		call = fmt.Sprintf("padsrt.ReadInt(s, %d)", spec.Bits)
	case ir.RAInt:
		call = fmt.Sprintf("padsrt.ReadAInt(s, %d)", spec.Bits)
	case ir.REInt:
		call = fmt.Sprintf("padsrt.ReadEInt(s, %d)", spec.Bits)
	case ir.RBInt:
		call = fmt.Sprintf("padsrt.ReadBInt(s, %d)", spec.Bits/8)
	case ir.RAIntFW:
		call = fmt.Sprintf("padsrt.ReadAIntFW(s, %s, %d)", g.argInt(spec.Width, sc), spec.Bits)
	case ir.RBCD:
		call = fmt.Sprintf("padsrt.ReadBCD(s, %s)", g.argInt(spec.Width, sc))
	case ir.RZoned:
		call = fmt.Sprintf("padsrt.ReadZoned(s, %s)", g.argInt(spec.Width, sc))
	case ir.RAFloat:
		call = fmt.Sprintf("padsrt.ReadAFloat(s, %d)", spec.Bits)
		conv = fmt.Sprintf("float%d(%s)", spec.Bits, v)
	case ir.RStringTerm, ir.RStringEOR, ir.RStringFW:
		// A skip path avoids materializing strings whose mask neither
		// sets nor (for validated kinds) checks: the run-time saving
		// masks exist to provide (section 5.1.2).
		var skip string
		switch spec.Read {
		case ir.RStringTerm:
			t := g.argByte(spec.Term, sc)
			call = fmt.Sprintf("padsrt.ReadStringTerm(s, %s)", t)
			skip = fmt.Sprintf("padsrt.SkipStringTerm(s, %s)", t)
		case ir.RStringEOR:
			call = "padsrt.ReadStringEOR(s)"
			skip = "padsrt.SkipStringEOR(s)"
		default:
			w := g.argInt(spec.Width, sc)
			call = fmt.Sprintf("padsrt.ReadStringFW(s, %s)", w)
			skip = fmt.Sprintf("padsrt.SkipStringFW(s, %s)", w)
		}
		g.p("%s\tif %s {", ind, g.doSetExpr(mExpr))
		g.p("%s\t\t%s, %s := %s", ind, v, c, call)
		g.p("%s\t\tif %s != padsrt.ErrNone {", ind, c)
		g.p("%s\t\t\t%s.SetError(%s, s.LocHere())", ind, pdExpr, c)
		g.p("%s\t\t} else {", ind)
		g.p("%s\t\t\t%s = %s", ind, target, v)
		g.p("%s\t\t}", ind)
		g.p("%s\t} else if %s := %s; %s != padsrt.ErrNone {", ind, c, skip, c)
		g.p("%s\t\t%s.SetError(%s, s.LocHere())", ind, pdExpr, c)
		g.p("%s\t}", ind)
		g.p("%s}", ind)
		return
	case ir.RStringME:
		call, conv = fmt.Sprintf("padsrt.ReadStringME(s, %s)", g.reVar(spec.Re.String())), v
	case ir.RStringSE:
		call, conv = fmt.Sprintf("padsrt.ReadStringSE(s, %s)", g.reVar(spec.Re.String())), v
	case ir.RHostname:
		call, conv = "padsrt.ReadHostname(s)", v
	case ir.RZip:
		call, conv = "padsrt.ReadZip(s)", v
	case ir.RDate:
		t := "0"
		if spec.TermChar {
			t = g.argByte(spec.Term, sc)
		}
		// Skip the date parse entirely when the field is neither set nor
		// checked; the text is still consumed syntactically.
		g.p("%s\tif %s || %s {", ind, g.doSetExpr(mExpr), g.doCheckExpr(mExpr))
		g.p("%s\t\tsec, raw, %s := padsrt.ReadDate(s, %s)", ind, c, t)
		g.p("%s\t\tif %s != padsrt.ErrNone {", ind, c)
		g.p("%s\t\t\t%s.SetError(%s, s.LocHere())", ind, pdExpr, c)
		g.p("%s\t\t} else if %s {", ind, g.doSetExpr(mExpr))
		g.p("%s\t\t\t%s = padsrt.DateVal{Sec: sec, Raw: raw}", ind, target)
		g.p("%s\t\t}", ind)
		g.p("%s\t} else if %s := padsrt.SkipStringTerm(s, %s); %s != padsrt.ErrNone {", ind, c, t, c)
		g.p("%s\t\t%s.SetError(%s, s.LocHere())", ind, pdExpr, c)
		g.p("%s\t}", ind)
		g.p("%s}", ind)
		return
	case ir.RIP:
		call, conv = "padsrt.ReadIP(s)", v
	case ir.RVoid:
		g.p("%s}", ind)
		return
	default:
		g.err = fmt.Errorf("codegen: unsupported read op %v", spec.Read)
		g.p("%s}", ind)
		return
	}
	if conv == "" {
		switch spec.Info.Kind {
		case sema.KUint:
			conv = fmt.Sprintf("uint%d(%s)", spec.Bits, v)
		default:
			conv = fmt.Sprintf("int%d(%s)", spec.Bits, v)
		}
	}

	g.p("%s\t%s, %s := %s", ind, v, c, call)
	g.p("%s\tif %s != padsrt.ErrNone {", ind, c)
	g.p("%s\t\t%s.SetError(%s, s.LocHere())", ind, pdExpr, c)
	g.p("%s\t} else if %s {", ind, g.doSetExpr(mExpr))
	g.p("%s\t\t%s = %s", ind, target, conv)
	g.p("%s\t}", ind)
	g.p("%s}", ind)
}

// ---- struct ----

func (g *gen) emitStruct(d *dsl.StructDecl) {
	name := GoName(d.Name)
	g.p("// %s is the in-memory representation of the PADS type %s.", name, d.Name)
	g.p("type %s struct {", name)
	for _, it := range d.Items {
		if it.Field == nil {
			continue
		}
		g.p("\t%s %s", goFieldName(it.Field.Name), g.goType(it.Field.Type))
	}
	g.p("}")
	g.p("")
	g.p("// %sPD is the parse descriptor for %s.", name, d.Name)
	g.p("type %sPD struct {", name)
	g.p("\tPD padsrt.PD")
	for _, it := range d.Items {
		if it.Field == nil {
			continue
		}
		g.p("\t%s %s", goFieldName(it.Field.Name), g.pdOf(it.Field.Type))
	}
	g.p("}")
	g.p("")
	g.p("// %sMask controls checking and setting for %s.", name, d.Name)
	g.p("type %sMask struct {", name)
	g.p("\tCompoundLevel padsrt.Mask")
	for _, it := range d.Items {
		if it.Field == nil {
			continue
		}
		g.p("\t%s %s", goFieldName(it.Field.Name), g.maskOf(it.Field.Type))
	}
	g.p("}")
	g.p("")
	g.emitMaskCtor(name, structMaskFields(d, g))
	g.p("var default%sMask = New%sMask(padsrt.CheckAndSet)", name, name)
	g.p("")

	// Read.
	g.p("// Read%s parses one %s from s.", name, d.Name)
	g.p("func Read%s(s *padsrt.Source, m *%sMask, pd *%sPD, rep *%s%s) {", name, name, name, name, g.paramList(d.Params))
	g.p("\tif m == nil {")
	g.p("\t\tm = default%sMask", name)
	g.p("\t}")
	g.p("\tpd.PD = padsrt.PD{}")
	g.recordPrologue(d.IsRecord)

	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}
	kids := g.prog.KidsOf(&g.prog.Nodes[g.prog.Root(d.Name)])
	uniq := 0
	for i, it := range d.Items {
		k := &g.prog.Nodes[kids[i]]
		uniq++
		if k.Op == ir.OpLit {
			g.p("\t{")
			g.p("\t\tif code := %s; code != padsrt.ErrNone {", g.matchLitID(k.A))
			g.p("\t\t\tpd.PD.SetError(code, s.LocHere())")
			g.p("\t\t\tif pd.PD.State == padsrt.Normal {")
			g.p("\t\t\t\tpd.PD.State = padsrt.Partial")
			g.p("\t\t\t}")
			g.p("\t\t}")
			g.p("\t}")
			continue
		}
		f := it.Field
		fn := goFieldName(f.Name)
		g.readCall(k.A, f.Type, "rep."+fn, "m."+fn, "pd."+fn, sc, 1, fmt.Sprintf("f%d", uniq))
		pdh := g.pdHeader(f.Type, "pd."+fn)
		if f.Constraint != nil {
			fsc := newScope(sc)
			fsc.bind(f.Name, "rep."+fn, g.tyOfRef(f.Type))
			cond, _ := g.expr(f.Constraint, fsc)
			g.p("\tif %s && %s.Nerr == 0 {", g.maskCheck(f.Type, "m."+fn), pdh)
			g.p("\t\tif !(%s) {", cond)
			g.p("\t\t\t%s.SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})", pdh)
			g.p("\t\t}")
			g.p("\t}")
		}
		g.p("\tpd.PD.AddChildErrors(&%s, padsrt.ErrStructField)", pdh)
		sc.bind(f.Name, "rep."+fn, g.tyOfRef(f.Type))
	}
	if d.Where != nil {
		cond, _ := g.expr(d.Where, sc)
		g.p("\tif %s && pd.PD.Nerr == 0 {", g.doCheckExpr("m.CompoundLevel"))
		g.p("\t\tif !(%s) {", cond)
		g.p("\t\t\tpd.PD.SetError(padsrt.ErrWhere, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})")
		g.p("\t\t}")
		g.p("\t}")
	}
	g.recordEpilogue(d.IsRecord)
	g.p("}")
	g.p("")
	g.emitStructAux(d)
}

type maskField struct {
	goName string
	tr     dsl.TypeRef
}

func structMaskFields(d *dsl.StructDecl, g *gen) []maskField {
	var out []maskField
	for _, it := range d.Items {
		if it.Field != nil {
			out = append(out, maskField{goFieldName(it.Field.Name), it.Field.Type})
		}
	}
	return out
}

// emitMaskCtor emits New<T>Mask(base) initializing every control to base.
func (g *gen) emitMaskCtor(name string, fields []maskField) {
	g.p("// New%sMask builds a mask with every control set to base.", name)
	g.p("func New%sMask(base padsrt.Mask) *%sMask {", name, name)
	g.p("\tm := &%sMask{CompoundLevel: base}", name)
	for _, f := range fields {
		if g.compoundRef(f.tr) {
			g.p("\tm.%s = *New%sMask(base)", f.goName, GoName(f.tr.Name))
		} else {
			g.p("\tm.%s = base", f.goName)
		}
	}
	g.p("\treturn m")
	g.p("}")
	g.p("")
}

// ---- union ----

func (g *gen) emitUnion(d *dsl.UnionDecl) {
	name := GoName(d.Name)
	branches := d.Branches
	if d.Switch != nil {
		branches = nil
		for i := range d.Switch.Cases {
			branches = append(branches, d.Switch.Cases[i].Field)
		}
	}

	g.p("// %sTag identifies the branch a %s value holds.", name, d.Name)
	g.p("type %sTag int", name)
	g.p("const (")
	g.p("\t%sTagNone %sTag = iota", name, name)
	for i := range branches {
		g.p("\t%sTag%s", name, GoName(branches[i].Name))
	}
	g.p(")")
	g.p("")
	g.p("// %s is the in-memory representation of the PADS union %s.", name, d.Name)
	g.p("type %s struct {", name)
	g.p("\tTag %sTag", name)
	for i := range branches {
		g.p("\t%s %s", goFieldName(branches[i].Name), g.goType(branches[i].Type))
	}
	g.p("}")
	g.p("")
	g.p("// %sPD is the parse descriptor for %s.", name, d.Name)
	g.p("type %sPD struct {", name)
	g.p("\tPD padsrt.PD")
	for i := range branches {
		g.p("\t%s %s", goFieldName(branches[i].Name), g.pdOf(branches[i].Type))
	}
	g.p("}")
	g.p("")
	g.p("// %sMask controls checking and setting for %s.", name, d.Name)
	g.p("type %sMask struct {", name)
	g.p("\tCompoundLevel padsrt.Mask")
	for i := range branches {
		g.p("\t%s %s", goFieldName(branches[i].Name), g.maskOf(branches[i].Type))
	}
	g.p("}")
	g.p("")
	var mf []maskField
	for i := range branches {
		mf = append(mf, maskField{goFieldName(branches[i].Name), branches[i].Type})
	}
	g.emitMaskCtor(name, mf)
	g.p("var default%sMask = New%sMask(padsrt.CheckAndSet)", name, name)
	g.p("")

	// Branch metadata lowered into the IR: per-branch child nodes, folded
	// atomicity, and (speculative unions only) first-byte classes.
	un := &g.prog.Nodes[g.prog.Root(d.Name)]
	kids := g.prog.KidsOf(un)
	screened := false
	if d.Switch == nil {
		for _, kid := range kids {
			if g.prog.Nodes[kid].D != ir.None {
				screened = true
			}
		}
	}
	if screened {
		g.p("// First-byte classes: a speculative branch whose class excludes the next")
		g.p("// input byte cannot possibly match, so its trial parse is skipped.")
		g.p("var (")
		for i, kid := range kids {
			if cid := g.prog.Nodes[kid].D; cid != ir.None {
				cls := g.prog.Classes[cid]
				g.p("\tfirst%s%d = padsrt.ByteClass{%#x, %#x, %#x, %#x}", name, i, cls[0], cls[1], cls[2], cls[3])
			}
		}
		g.p(")")
		g.p("")
	}

	g.p("// Read%s parses one %s from s.", name, d.Name)
	g.p("func Read%s(s *padsrt.Source, m *%sMask, pd *%sPD, rep *%s%s) {", name, name, name, name, g.paramList(d.Params))
	g.p("\tif m == nil {")
	g.p("\t\tm = default%sMask", name)
	g.p("\t}")
	g.p("\tpd.PD = padsrt.PD{}")
	g.p("\trep.Tag = %sTagNone", name)
	g.recordPrologue(d.IsRecord)
	g.p("\tbegin := s.Pos()")
	g.p("\t_ = begin")

	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}

	emitBranchRead := func(i int, depth int) {
		b := &branches[i]
		fn := goFieldName(b.Name)
		g.readCall(g.prog.Nodes[kids[i]].A, b.Type, "rep."+fn, "m."+fn, "pd."+fn, sc, depth, fmt.Sprintf("b%d", i))
		pdh := g.pdHeader(b.Type, "pd."+fn)
		if b.Constraint != nil {
			bsc := newScope(sc)
			bsc.bind(b.Name, "rep."+fn, g.tyOfRef(b.Type))
			cond, _ := g.expr(b.Constraint, bsc)
			ind := strings.Repeat("\t", depth)
			g.p("%sif %s && %s.Nerr == 0 {", ind, g.maskCheck(b.Type, "m."+fn), pdh)
			g.p("%s\tif !(%s) {", ind, cond)
			g.p("%s\t\t%s.SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})", ind, pdh)
			g.p("%s\t}", ind)
			g.p("%s}", ind)
		}
	}

	if d.Switch != nil {
		selCode, selT := g.expr(d.Switch.Selector, sc)
		g.p("\tsel := %s", asNum(selCode, selT))
		g.p("\tswitch {")
		defaultIdx := -1
		bi := 0
		for ci := range d.Switch.Cases {
			cs := &d.Switch.Cases[ci]
			if len(cs.Values) == 0 {
				defaultIdx = bi
				bi++
				continue
			}
			var conds []string
			for _, vx := range cs.Values {
				code, t := g.expr(vx, sc)
				conds = append(conds, fmt.Sprintf("sel == %s", asNum(code, t)))
			}
			g.p("\tcase %s:", strings.Join(conds, " || "))
			emitBranchRead(bi, 2)
			g.p("\t\trep.Tag = %sTag%s", name, GoName(branches[bi].Name))
			g.p("\t\tpd.PD.AddChildErrors(&%s, padsrt.ErrStructField)", g.pdHeader(branches[bi].Type, "pd."+goFieldName(branches[bi].Name)))
			bi++
		}
		g.p("\tdefault:")
		if defaultIdx >= 0 {
			emitBranchRead(defaultIdx, 2)
			g.p("\t\trep.Tag = %sTag%s", name, GoName(branches[defaultIdx].Name))
			g.p("\t\tpd.PD.AddChildErrors(&%s, padsrt.ErrStructField)", g.pdHeader(branches[defaultIdx].Type, "pd."+goFieldName(branches[defaultIdx].Name)))
		} else {
			g.p("\t\tpd.PD.SetError(padsrt.ErrUnionTag, padsrt.Loc{Begin: begin, End: begin})")
		}
		g.p("\t}")
	} else {
		if screened {
			// The screen is armed only when nothing observes the
			// checkpoint stream: telemetry counters, profiler sampling,
			// and speculation limits all see fewer trials when branches
			// are skipped, so their presence disables screening — the
			// same gate the VM applies.
			g.p("\tscreen := s.Stats() == nil && s.Prof() == nil && !s.SpecLimited()")
			g.p("\tnb, nbOK := s.PeekByte()")
		}
		for i := range branches {
			k := &g.prog.Nodes[kids[i]]
			fn := goFieldName(branches[i].Name)
			pdh := g.pdHeader(branches[i].Type, "pd."+fn)
			atomic := g.prog.Nodes[k.A].Flags&ir.FAtomic != 0 && k.B == ir.None
			rewind := g.prog.Nodes[k.A].Flags&ir.FRewind != 0 && k.B == ir.None
			depth := 1
			if k.D != ir.None {
				// ASCII-conditional classes hold only under the default
				// ambient coding; on other codings the probe is disarmed.
				if g.prog.ClassASCII[k.D] {
					g.p("\tif !screen || s.Coding() != padsrt.ASCII || (nbOK && first%s%d.Has(nb)) {", name, i)
				} else {
					g.p("\tif !screen || (nbOK && first%s%d.Has(nb)) {", name, i)
				}
				depth = 2
			}
			ind := strings.Repeat("\t", depth)
			switch {
			case atomic:
			case rewind:
				g.p("%smark%d := s.Mark()", ind, i)
			default:
				g.p("%ss.Checkpoint()", ind)
			}
			emitBranchRead(i, depth)
			g.p("%sif %s.Nerr == 0 {", ind, pdh)
			if !atomic && !rewind {
				g.p("%s\ts.Commit()", ind)
			}
			g.p("%s\trep.Tag = %sTag%s", ind, name, GoName(branches[i].Name))
			if d.IsRecord {
				g.recordEpilogue(true)
			}
			g.p("%s\treturn", ind)
			g.p("%s}", ind)
			switch {
			case atomic:
			case rewind:
				g.p("%ss.Rewind(mark%d)", ind, i)
			default:
				g.p("%ss.Restore()", ind)
			}
			if k.D != ir.None {
				g.p("\t}")
			}
		}
		g.p("\tpd.PD.SetError(padsrt.ErrUnionMatch, s.LocFrom(begin))")
	}
	g.recordEpilogue(d.IsRecord)
	g.p("}")
	g.p("")
	g.emitUnionAux(d, branches)
}

// ---- array ----

func (g *gen) emitArray(d *dsl.ArrayDecl) {
	name := GoName(d.Name)
	elemGo := g.goType(d.Elem)
	elemPD := g.pdOf(d.Elem)

	g.p("// %s is the in-memory representation of the PADS array %s.", name, d.Name)
	g.p("type %s struct {", name)
	g.p("\tElems []%s", elemGo)
	g.p("}")
	g.p("")
	g.p("// %sPD is the parse descriptor for %s.", name, d.Name)
	g.p("type %sPD struct {", name)
	g.p("\tPD padsrt.PD")
	g.p("\tElems []%s", elemPD)
	g.p("}")
	g.p("")
	g.p("// %sMask controls checking and setting for %s.", name, d.Name)
	g.p("type %sMask struct {", name)
	g.p("\tCompoundLevel padsrt.Mask")
	if g.compoundRef(d.Elem) {
		g.p("\tElem %s", g.maskOf(d.Elem))
	} else {
		g.p("\tElem padsrt.Mask")
	}
	g.p("}")
	g.p("")
	g.p("// New%sMask builds a mask with every control set to base.", name)
	g.p("func New%sMask(base padsrt.Mask) *%sMask {", name, name)
	g.p("\tm := &%sMask{CompoundLevel: base}", name)
	if g.compoundRef(d.Elem) {
		g.p("\tm.Elem = *New%sMask(base)", GoName(d.Elem.Name))
	} else {
		g.p("\tm.Elem = base")
	}
	g.p("\treturn m")
	g.p("}")
	g.p("")
	g.p("var default%sMask = New%sMask(padsrt.CheckAndSet)", name, name)
	g.p("")

	// The lowered ArraySpec carries folded bounds, pooled sep/term literal
	// matchers, and the element node.
	an := &g.prog.Nodes[g.prog.Root(d.Name)]
	spec := &g.prog.Arrays[an.A]

	g.p("// Read%s parses one %s from s.", name, d.Name)
	g.p("func Read%s(s *padsrt.Source, m *%sMask, pd *%sPD, rep *%s%s) {", name, name, name, name, g.paramList(d.Params))
	g.p("\tif m == nil {")
	g.p("\t\tm = default%sMask", name)
	g.p("\t}")
	g.p("\tpd.PD = padsrt.PD{}")
	g.p("\tpd.Elems = pd.Elems[:0]")
	g.p("\trep.Elems = rep.Elems[:0]")
	g.recordPrologue(d.IsRecord)
	g.p("\tbegin := s.Pos()")
	g.p("\t_ = begin")

	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}
	seqSc := newScope(sc)
	seqSc.bind("elts", "rep.Elems", ty{k: sema.KArray, name: d.Name, elem: tyPtr(g.tyOfRef(d.Elem))})
	seqSc.bind("length", "int64(len(rep.Elems))", tyNum)

	if spec.HasMin {
		if spec.MinSize.IsConst {
			g.p("\tminSize := int64(%d)", spec.MinSize.Const)
		} else {
			code, t := g.expr(g.prog.Exprs[spec.MinSize.Expr], sc)
			g.p("\tminSize := %s", asNum(code, t))
		}
	}
	if spec.HasMax {
		if spec.MaxSize.IsConst {
			g.p("\tmaxSize := int64(%d)", spec.MaxSize.Const)
		} else {
			code, t := g.expr(g.prog.Exprs[spec.MaxSize.Expr], sc)
			g.p("\tmaxSize := %s", asNum(code, t))
		}
	}

	g.p("\tfor {")
	if spec.HasMax {
		g.p("\t\tif int64(len(rep.Elems)) >= maxSize {")
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	}
	if spec.EndedPred != ir.None {
		cond, _ := g.expr(g.prog.Exprs[spec.EndedPred], seqSc)
		g.p("\t\tif %s {", cond)
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	}
	switch {
	case spec.TermEOR:
		g.p("\t\tif s.AtEOR() {")
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	case spec.TermEOF:
		g.p("\t\tif s.AtEOF() {")
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	case spec.Term != ir.None:
		g.p("\t\ts.Checkpoint()")
		g.p("\t\tif %s == padsrt.ErrNone {", g.matchLitID(spec.Term))
		g.p("\t\t\ts.Commit()")
		g.p("\t\t\tbreak")
		g.p("\t\t}")
		g.p("\t\ts.Restore()")
	}
	if spec.ElemIsRecord {
		g.p("\t\tif !s.InRecord() && !s.More() {")
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	} else {
		g.p("\t\tif s.AtEOR() || (!s.InRecord() && s.AtEOF()) {")
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	}
	if spec.Sep != ir.None {
		g.p("\t\tif len(rep.Elems) > 0 {")
		g.p("\t\t\tsepBegin := s.Pos()")
		g.p("\t\t\tif code := %s; code != padsrt.ErrNone {", g.matchLitID(spec.Sep))
		g.p("\t\t\t\tpd.PD.SetError(padsrt.ErrArraySep, s.LocFrom(sepBegin))")
		g.p("\t\t\t\tbreak")
		g.p("\t\t\t}")
		g.p("\t\t}")
	}
	g.p("\t\tposBefore := s.Pos().Byte")
	g.p("\t\trep.Elems = append(rep.Elems, %s{})", strings.TrimPrefix(elemGo, "*"))
	g.p("\t\tpd.Elems = append(pd.Elems, %s{})", elemPD)
	g.p("\t\ter := &rep.Elems[len(rep.Elems)-1]")
	g.p("\t\tepd := &pd.Elems[len(pd.Elems)-1]")
	elemMask := "m.Elem"
	g.readCall(an.B, d.Elem, "(*er)", elemMask, "(*epd)", sc, 2, "e")
	pdh := g.pdHeader(d.Elem, "(*epd)")
	g.p("\t\tif %s.Nerr > 0 {", pdh)
	g.p("\t\t\tpd.PD.AddChildErrors(&%s, padsrt.ErrArrayElem)", pdh)
	g.p("\t\t\tif s.Pos().Byte == posBefore {")
	g.p("\t\t\t\tbreak")
	g.p("\t\t\t}")
	g.p("\t\t}")
	if spec.LastPred != ir.None {
		lsc := newScope(seqSc)
		lsc.bind("elt", "(*er)", g.tyOfRef(d.Elem))
		cond, _ := g.expr(g.prog.Exprs[spec.LastPred], lsc)
		g.p("\t\tif %s {", cond)
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	}
	g.p("\t}")

	if spec.HasMin {
		g.p("\tif int64(len(rep.Elems)) < minSize && %s {", g.doCheckExpr("m.CompoundLevel"))
		g.p("\t\tpd.PD.SetError(padsrt.ErrArraySize, s.LocFrom(begin))")
		g.p("\t}")
	}
	if spec.Where != ir.None {
		cond, _ := g.expr(g.prog.Exprs[spec.Where], seqSc)
		g.p("\tif %s && pd.PD.Nerr == 0 {", g.doCheckExpr("m.CompoundLevel"))
		g.p("\t\tif !(%s) {", cond)
		g.p("\t\t\tpd.PD.SetError(padsrt.ErrWhere, s.LocFrom(begin))")
		g.p("\t\t}")
		g.p("\t}")
	}
	g.recordEpilogue(d.IsRecord)
	g.p("}")
	g.p("")
	g.emitArrayAux(d)
}

func tyPtr(t ty) *ty { return &t }

// ---- enum ----

func (g *gen) emitEnum(d *dsl.EnumDecl) {
	name := GoName(d.Name)
	g.p("// %s is the in-memory representation of the PADS enum %s.", name, d.Name)
	g.p("type %s int32", name)
	g.p("const (")
	for i, m := range d.Members {
		if i == 0 {
			g.p("\t%s_%s %s = iota", name, m.Name, name)
		} else {
			g.p("\t%s_%s", name, m.Name)
		}
	}
	g.p(")")
	g.p("")
	g.p("var reprs%s = [...]string{", name)
	for _, m := range d.Members {
		g.p("\t%q,", m.Repr)
	}
	g.p("}")
	g.p("")
	g.p("// String returns the member literal.")
	g.p("func (v %s) String() string {", name)
	g.p("\tif v < 0 || int(v) >= len(reprs%s) {", name)
	g.p("\t\treturn \"<invalid>\"")
	g.p("\t}")
	g.p("\treturn reprs%s[v]", name)
	g.p("}")
	g.p("")

	// Match order and peek width come from the lowered EnumSpec: members
	// sorted longest-repr-first, so the first match is the longest.
	spec := &g.prog.Enums[g.prog.Nodes[g.prog.Root(d.Name)].A]

	g.p("// Read%s parses one %s from s.", name, d.Name)
	g.p("func Read%s(s *padsrt.Source, m padsrt.Mask, pd *padsrt.PD, rep *%s) {", name, name)
	g.p("\t*pd = padsrt.PD{}")
	g.p("\tbegin := s.Pos()")
	g.p("\tw := s.Peek(%d)", spec.MaxLen)
	g.p("\tswitch {")
	for _, a := range spec.Alts {
		g.p("\tcase len(w) >= %d && string(w[:%d]) == %q:", len(a.Repr), len(a.Repr), a.Repr)
		g.p("\t\ts.Skip(%d)", len(a.Repr))
		g.p("\t\tif %s {", g.doSetExpr("m"))
		g.p("\t\t\t*rep = %s_%s", name, a.Name)
		g.p("\t\t}")
	}
	g.p("\tdefault:")
	g.p("\t\tpd.SetError(padsrt.ErrInvalidEnum, padsrt.Loc{Begin: begin, End: begin})")
	g.p("\t}")
	g.p("}")
	g.p("")
	g.emitEnumAux(d)
}

// ---- typedef ----

func (g *gen) emitTypedef(d *dsl.TypedefDecl) {
	name := GoName(d.Name)
	underGo := g.goType(d.Base)
	g.p("// %s is the in-memory representation of the PADS typedef %s.", name, d.Name)
	g.p("type %s = %s", name, underGo)
	g.p("")
	g.p("// Read%s parses one %s from s.", name, d.Name)
	g.p("func Read%s(s *padsrt.Source, m padsrt.Mask, pd *padsrt.PD, rep *%s%s) {", name, name, g.paramList(d.Params))
	g.p("\t*pd = padsrt.PD{}")
	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}
	// The base may itself be an enum/typedef (mask by value) or a base
	// type; compound bases are not supported for typedefs by the checker.
	g.readCall(g.prog.Nodes[g.prog.Root(d.Name)].A, d.Base, "(*rep)", "m", "(*pd)", sc, 1, "t")
	if d.Constraint != nil {
		csc := newScope(sc)
		csc.bind(d.VarName, "(*rep)", g.tyOfRef(d.Base))
		cond, _ := g.expr(d.Constraint, csc)
		g.p("\tif %s && pd.Nerr == 0 {", g.doCheckExpr("m"))
		g.p("\t\tif !(%s) {", cond)
		g.p("\t\t\tpd.SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})")
		g.p("\t\t}")
		g.p("\t}")
	}
	g.p("}")
	g.p("")
	g.emitTypedefAux(d)
}
