package codegen

import (
	"fmt"
	"sort"
	"strings"

	"pads/internal/dsl"
	"pads/internal/sema"
)

// pdOf returns the PD struct type name for a type reference ("padsrt.PD"
// for base types, optionals, enums, and typedefs).
func (g *gen) pdOf(tr dsl.TypeRef) string {
	if tr.Opt || isBase(tr) {
		return "padsrt.PD"
	}
	switch g.desc.Types[tr.Name].(type) {
	case *dsl.EnumDecl, *dsl.TypedefDecl:
		return "padsrt.PD"
	}
	return GoName(tr.Name) + "PD"
}

// maskOf returns the mask type for a type reference.
func (g *gen) maskOf(tr dsl.TypeRef) string { return g.maskType(tr) }

// compoundRef reports whether a reference needs struct-style mask/pd.
func (g *gen) compoundRef(tr dsl.TypeRef) bool {
	if tr.Opt || isBase(tr) {
		return false
	}
	switch g.desc.Types[tr.Name].(type) {
	case *dsl.StructDecl, *dsl.UnionDecl, *dsl.ArrayDecl:
		return true
	}
	return false
}

// pdHeader renders the expression for the padsrt.PD header of a field's pd.
func (g *gen) pdHeader(tr dsl.TypeRef, pdExpr string) string {
	if g.compoundRef(tr) {
		return pdExpr + ".PD"
	}
	return pdExpr
}

// maskCheck renders the DoCheck() test for a field's mask expression.
func (g *gen) maskCheck(tr dsl.TypeRef, mExpr string) string {
	if g.compoundRef(tr) {
		return g.doCheckExpr(mExpr + ".CompoundLevel")
	}
	return g.doCheckExpr(mExpr)
}

// maskSet renders the DoSet() test for a field's mask expression.
func (g *gen) maskSet(tr dsl.TypeRef, mExpr string) string {
	if g.compoundRef(tr) {
		return g.doSetExpr(mExpr + ".CompoundLevel")
	}
	return g.doSetExpr(mExpr)
}

// matchLiteral renders a literal match call.
func (g *gen) matchLiteral(l *dsl.Literal) string {
	switch l.Kind {
	case dsl.CharLit:
		return fmt.Sprintf("padsrt.MatchChar(s, %q)", l.Char)
	case dsl.StrLit:
		return fmt.Sprintf("padsrt.MatchString(s, %q)", l.Str)
	case dsl.RegexpLit:
		return fmt.Sprintf("padsrt.MatchRegexp(s, %s)", g.reVar(l.Str))
	case dsl.EORLit:
		return "padsrt.MatchEOR(s)"
	default:
		return "padsrt.MatchEOF(s)"
	}
}

// atomicRef reports whether parsing tr consumes no input when it fails and
// carries no value constraint, so speculative trials (Popt, union branches)
// need no checkpoint around it. Fixed-width reads consume their field even
// on bad digits and dates consume their text before validating, so both are
// excluded; so are typedefs with constraints (the constraint fails after
// the input was consumed).
func (g *gen) atomicRef(tr dsl.TypeRef) bool {
	if tr.Opt {
		return false
	}
	if b := sema.LookupBase(tr.Name); b != nil {
		return !b.FW && b.Kind != sema.KDate
	}
	switch d := g.desc.Types[tr.Name].(type) {
	case *dsl.EnumDecl:
		return true
	case *dsl.TypedefDecl:
		return d.Constraint == nil && g.atomicRef(d.Base)
	}
	return false
}

// readCall renders the call that parses one value of tr into target, using
// the given mask and pd expressions. uniq makes scratch names unique.
func (g *gen) readCall(tr dsl.TypeRef, target, mExpr, pdExpr string, sc *scope, depth int, uniq string) {
	ind := strings.Repeat("\t", depth)
	if tr.Opt {
		inner := tr
		inner.Opt = false
		g.p("%s%s = padsrt.PD{}", ind, pdExpr)
		atomic := g.atomicRef(inner)
		if !atomic {
			g.p("%ss.Checkpoint()", ind)
		}
		g.p("%s{", ind)
		// The inner pd is scoped locally: an absent optional is clean.
		g.p("%s\tvar optPD%s %s", ind, uniq, g.pdOf(inner))
		innerMask := mExpr
		innerPD := "optPD" + uniq
		if g.compoundRef(inner) {
			// Build a full-checking mask for the inner compound from
			// the field-level scalar mask.
			g.p("%s\toptM%s := New%sMask(%s)", ind, uniq, GoName(inner.Name), mExpr)
			innerMask = "optM" + uniq
		}
		g.readCallNonOpt(inner, target+".Val", innerMask, innerPD, sc, depth+1, uniq+"i")
		if atomic {
			// An atomic inner type consumes nothing on failure: no
			// checkpoint is needed around the trial.
			g.p("%s\t%s.Present = %s.Nerr == 0", ind, target, g.pdHeader(inner, innerPD))
		} else {
			g.p("%s\tif %s.Nerr == 0 {", ind, g.pdHeader(inner, innerPD))
			g.p("%s\t\ts.Commit()", ind)
			g.p("%s\t\t%s.Present = true", ind, target)
			g.p("%s\t} else {", ind)
			g.p("%s\t\ts.Restore()", ind)
			g.p("%s\t\t%s.Present = false", ind, target)
			g.p("%s\t}", ind)
		}
		g.p("%s}", ind)
		return
	}
	g.readCallNonOpt(tr, target, mExpr, pdExpr, sc, depth, uniq)
}

func (g *gen) readCallNonOpt(tr dsl.TypeRef, target, mExpr, pdExpr string, sc *scope, depth int, uniq string) {
	ind := strings.Repeat("\t", depth)
	if b := sema.LookupBase(tr.Name); b != nil {
		g.readBase(b, tr, target, mExpr, pdExpr, sc, depth, uniq)
		return
	}
	d, ok := g.desc.Types[tr.Name]
	if !ok {
		g.err = fmt.Errorf("codegen: unknown type %s", tr.Name)
		return
	}
	args := g.argExprs(tr, sc)
	switch d.(type) {
	case *dsl.EnumDecl, *dsl.TypedefDecl:
		g.p("%sRead%s(s, %s, &%s, &%s%s)", ind, GoName(tr.Name), mExpr, pdExpr, target, args)
	default:
		mRef := "&" + mExpr
		if strings.HasPrefix(mExpr, "optM") || strings.HasPrefix(mExpr, "elemM") {
			mRef = mExpr // already a pointer
		}
		g.p("%sRead%s(s, %s, &%s, &%s%s)", ind, GoName(tr.Name), mRef, pdExpr, target, args)
	}
}

// readBase emits a base-type read into target.
func (g *gen) readBase(b *sema.BaseInfo, tr dsl.TypeRef, target, mExpr, pdExpr string, sc *scope, depth int, uniq string) {
	ind := strings.Repeat("\t", depth)
	v := "v" + uniq
	c := "c" + uniq

	intArg := func(i int) string {
		code, t := g.expr(tr.Args[i], sc)
		return "int(" + asNum(code, t) + ")"
	}
	// termArg renders a Pstring/Pdate terminator; ok=false means Peor/Peof.
	termArg := func(i int) (string, bool) {
		switch a := tr.Args[i].(type) {
		case *dsl.CharExpr:
			return fmt.Sprintf("%q", a.Val), true
		case *dsl.EORExpr, *dsl.EOFExpr:
			return "", false
		default:
			code, t := g.expr(a, sc)
			return "byte(" + asNum(code, t) + ")", true
		}
	}

	g.p("%s%s = padsrt.PD{}", ind, pdExpr)
	g.p("%s{", ind)

	var call, conv string
	switch b.Kind {
	case sema.KChar:
		switch b.Coding {
		case "a":
			call = "padsrt.ReadAChar(s)"
		case "e":
			call = "padsrt.ReadEChar(s)"
		case "b":
			call = "padsrt.ReadBChar(s)"
		default:
			call = "padsrt.ReadChar(s)"
		}
		conv = v
	case sema.KUint:
		switch {
		case b.FW && b.Coding == "a":
			call = fmt.Sprintf("padsrt.ReadAUintFW(s, %s, %d)", intArg(0), b.Bits)
		case b.FW:
			call = fmt.Sprintf("padsrt.ReadUintFW(s, %s, %d)", intArg(0), b.Bits)
		case b.Coding == "a":
			call = fmt.Sprintf("padsrt.ReadAUint(s, %d)", b.Bits)
		case b.Coding == "e":
			call = fmt.Sprintf("padsrt.ReadEUint(s, %d)", b.Bits)
		case b.Coding == "b":
			call = fmt.Sprintf("padsrt.ReadBUint(s, %d)", b.Bits/8)
		default:
			call = fmt.Sprintf("padsrt.ReadUint(s, %d)", b.Bits)
		}
		conv = fmt.Sprintf("uint%d(%s)", b.Bits, v)
	case sema.KInt:
		switch {
		case b.Coding == "bcd":
			call = fmt.Sprintf("padsrt.ReadBCD(s, %s)", intArg(0))
		case b.Coding == "zoned":
			call = fmt.Sprintf("padsrt.ReadZoned(s, %s)", intArg(0))
		case b.FW:
			call = fmt.Sprintf("padsrt.ReadAIntFW(s, %s, %d)", intArg(0), b.Bits)
		case b.Coding == "a":
			call = fmt.Sprintf("padsrt.ReadAInt(s, %d)", b.Bits)
		case b.Coding == "e":
			call = fmt.Sprintf("padsrt.ReadEInt(s, %d)", b.Bits)
		case b.Coding == "b":
			call = fmt.Sprintf("padsrt.ReadBInt(s, %d)", b.Bits/8)
		default:
			call = fmt.Sprintf("padsrt.ReadInt(s, %d)", b.Bits)
		}
		conv = fmt.Sprintf("int%d(%s)", b.Bits, v)
	case sema.KFloat:
		call = fmt.Sprintf("padsrt.ReadAFloat(s, %d)", b.Bits)
		conv = fmt.Sprintf("float%d(%s)", b.Bits, v)
	case sema.KString:
		// A skip path avoids materializing strings whose mask neither
		// sets nor (for validated kinds) checks: the run-time saving
		// masks exist to provide (section 5.1.2).
		skip := ""
		switch b.Name {
		case "Pstring":
			if t, isChar := termArg(0); isChar {
				call = fmt.Sprintf("padsrt.ReadStringTerm(s, %s)", t)
				skip = fmt.Sprintf("padsrt.SkipStringTerm(s, %s)", t)
			} else {
				call = "padsrt.ReadStringEOR(s)"
				skip = "padsrt.SkipStringEOR(s)"
			}
		case "Pstring_FW":
			w := intArg(0)
			call = fmt.Sprintf("padsrt.ReadStringFW(s, %s)", w)
			skip = fmt.Sprintf("padsrt.SkipStringFW(s, %s)", w)
		case "Pstring_ME", "Pstring_SE":
			re := "nil"
			if rex, ok := tr.Args[0].(*dsl.RegexpExpr); ok {
				re = g.reVar(rex.Src)
			}
			if b.Name == "Pstring_ME" {
				call = fmt.Sprintf("padsrt.ReadStringME(s, %s)", re)
			} else {
				call = fmt.Sprintf("padsrt.ReadStringSE(s, %s)", re)
			}
		case "Phostname":
			call = "padsrt.ReadHostname(s)"
		case "Pzip":
			call = "padsrt.ReadZip(s)"
		default:
			g.err = fmt.Errorf("codegen: unsupported string base %s", b.Name)
			call = "padsrt.ReadHostname(s)"
		}
		if skip != "" {
			g.p("%s\tif %s {", ind, g.doSetExpr(mExpr))
			g.p("%s\t\t%s, %s := %s", ind, v, c, call)
			g.p("%s\t\tif %s != padsrt.ErrNone {", ind, c)
			g.p("%s\t\t\t%s.SetError(%s, s.LocHere())", ind, pdExpr, c)
			g.p("%s\t\t} else {", ind)
			g.p("%s\t\t\t%s = %s", ind, target, v)
			g.p("%s\t\t}", ind)
			g.p("%s\t} else if %s := %s; %s != padsrt.ErrNone {", ind, c, skip, c)
			g.p("%s\t\t%s.SetError(%s, s.LocHere())", ind, pdExpr, c)
			g.p("%s\t}", ind)
			g.p("%s}", ind)
			return
		}
		conv = v
	case sema.KDate:
		t, isChar := termArg(0)
		if !isChar {
			t = "0"
		}
		// Skip the date parse entirely when the field is neither set nor
		// checked; the text is still consumed syntactically.
		g.p("%s\tif %s || %s {", ind, g.doSetExpr(mExpr), g.doCheckExpr(mExpr))
		g.p("%s\t\tsec, raw, %s := padsrt.ReadDate(s, %s)", ind, c, t)
		g.p("%s\t\tif %s != padsrt.ErrNone {", ind, c)
		g.p("%s\t\t\t%s.SetError(%s, s.LocHere())", ind, pdExpr, c)
		g.p("%s\t\t} else if %s {", ind, g.doSetExpr(mExpr))
		g.p("%s\t\t\t%s = padsrt.DateVal{Sec: sec, Raw: raw}", ind, target)
		g.p("%s\t\t}", ind)
		g.p("%s\t} else if %s := padsrt.SkipStringTerm(s, %s); %s != padsrt.ErrNone {", ind, c, t, c)
		g.p("%s\t\t%s.SetError(%s, s.LocHere())", ind, pdExpr, c)
		g.p("%s\t}", ind)
		g.p("%s}", ind)
		return
	case sema.KIP:
		call = "padsrt.ReadIP(s)"
		conv = v
	case sema.KVoid:
		g.p("%s}", ind)
		return
	}

	g.p("%s\t%s, %s := %s", ind, v, c, call)
	g.p("%s\tif %s != padsrt.ErrNone {", ind, c)
	g.p("%s\t\t%s.SetError(%s, s.LocHere())", ind, pdExpr, c)
	g.p("%s\t} else if %s {", ind, g.doSetExpr(mExpr))
	g.p("%s\t\t%s = %s", ind, target, conv)
	g.p("%s\t}", ind)
	g.p("%s}", ind)
}

// ---- struct ----

func (g *gen) emitStruct(d *dsl.StructDecl) {
	name := GoName(d.Name)
	g.p("// %s is the in-memory representation of the PADS type %s.", name, d.Name)
	g.p("type %s struct {", name)
	for _, it := range d.Items {
		if it.Field == nil {
			continue
		}
		g.p("\t%s %s", goFieldName(it.Field.Name), g.goType(it.Field.Type))
	}
	g.p("}")
	g.p("")
	g.p("// %sPD is the parse descriptor for %s.", name, d.Name)
	g.p("type %sPD struct {", name)
	g.p("\tPD padsrt.PD")
	for _, it := range d.Items {
		if it.Field == nil {
			continue
		}
		g.p("\t%s %s", goFieldName(it.Field.Name), g.pdOf(it.Field.Type))
	}
	g.p("}")
	g.p("")
	g.p("// %sMask controls checking and setting for %s.", name, d.Name)
	g.p("type %sMask struct {", name)
	g.p("\tCompoundLevel padsrt.Mask")
	for _, it := range d.Items {
		if it.Field == nil {
			continue
		}
		g.p("\t%s %s", goFieldName(it.Field.Name), g.maskOf(it.Field.Type))
	}
	g.p("}")
	g.p("")
	g.emitMaskCtor(name, structMaskFields(d, g))
	g.p("var default%sMask = New%sMask(padsrt.CheckAndSet)", name, name)
	g.p("")

	// Read.
	g.p("// Read%s parses one %s from s.", name, d.Name)
	g.p("func Read%s(s *padsrt.Source, m *%sMask, pd *%sPD, rep *%s%s) {", name, name, name, name, g.paramList(d.Params))
	g.p("\tif m == nil {")
	g.p("\t\tm = default%sMask", name)
	g.p("\t}")
	g.p("\tpd.PD = padsrt.PD{}")
	g.recordPrologue(d.IsRecord)

	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}
	uniq := 0
	for _, it := range d.Items {
		uniq++
		if it.Lit != nil {
			g.p("\t{")
			g.p("\t\tif code := %s; code != padsrt.ErrNone {", g.matchLiteral(it.Lit))
			g.p("\t\t\tpd.PD.SetError(code, s.LocHere())")
			g.p("\t\t\tif pd.PD.State == padsrt.Normal {")
			g.p("\t\t\t\tpd.PD.State = padsrt.Partial")
			g.p("\t\t\t}")
			g.p("\t\t}")
			g.p("\t}")
			continue
		}
		f := it.Field
		fn := goFieldName(f.Name)
		g.readCall(f.Type, "rep."+fn, "m."+fn, "pd."+fn, sc, 1, fmt.Sprintf("f%d", uniq))
		pdh := g.pdHeader(f.Type, "pd."+fn)
		if f.Constraint != nil {
			fsc := newScope(sc)
			fsc.bind(f.Name, "rep."+fn, g.tyOfRef(f.Type))
			cond, _ := g.expr(f.Constraint, fsc)
			g.p("\tif %s && %s.Nerr == 0 {", g.maskCheck(f.Type, "m."+fn), pdh)
			g.p("\t\tif !(%s) {", cond)
			g.p("\t\t\t%s.SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})", pdh)
			g.p("\t\t}")
			g.p("\t}")
		}
		g.p("\tpd.PD.AddChildErrors(&%s, padsrt.ErrStructField)", pdh)
		sc.bind(f.Name, "rep."+fn, g.tyOfRef(f.Type))
	}
	if d.Where != nil {
		cond, _ := g.expr(d.Where, sc)
		g.p("\tif %s && pd.PD.Nerr == 0 {", g.doCheckExpr("m.CompoundLevel"))
		g.p("\t\tif !(%s) {", cond)
		g.p("\t\t\tpd.PD.SetError(padsrt.ErrWhere, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})")
		g.p("\t\t}")
		g.p("\t}")
	}
	g.recordEpilogue(d.IsRecord)
	g.p("}")
	g.p("")
	g.emitStructAux(d)
}

type maskField struct {
	goName string
	tr     dsl.TypeRef
}

func structMaskFields(d *dsl.StructDecl, g *gen) []maskField {
	var out []maskField
	for _, it := range d.Items {
		if it.Field != nil {
			out = append(out, maskField{goFieldName(it.Field.Name), it.Field.Type})
		}
	}
	return out
}

// emitMaskCtor emits New<T>Mask(base) initializing every control to base.
func (g *gen) emitMaskCtor(name string, fields []maskField) {
	g.p("// New%sMask builds a mask with every control set to base.", name)
	g.p("func New%sMask(base padsrt.Mask) *%sMask {", name, name)
	g.p("\tm := &%sMask{CompoundLevel: base}", name)
	for _, f := range fields {
		if g.compoundRef(f.tr) {
			g.p("\tm.%s = *New%sMask(base)", f.goName, GoName(f.tr.Name))
		} else {
			g.p("\tm.%s = base", f.goName)
		}
	}
	g.p("\treturn m")
	g.p("}")
	g.p("")
}

// ---- union ----

func (g *gen) emitUnion(d *dsl.UnionDecl) {
	name := GoName(d.Name)
	branches := d.Branches
	if d.Switch != nil {
		branches = nil
		for i := range d.Switch.Cases {
			branches = append(branches, d.Switch.Cases[i].Field)
		}
	}

	g.p("// %sTag identifies the branch a %s value holds.", name, d.Name)
	g.p("type %sTag int", name)
	g.p("const (")
	g.p("\t%sTagNone %sTag = iota", name, name)
	for i := range branches {
		g.p("\t%sTag%s", name, GoName(branches[i].Name))
	}
	g.p(")")
	g.p("")
	g.p("// %s is the in-memory representation of the PADS union %s.", name, d.Name)
	g.p("type %s struct {", name)
	g.p("\tTag %sTag", name)
	for i := range branches {
		g.p("\t%s %s", goFieldName(branches[i].Name), g.goType(branches[i].Type))
	}
	g.p("}")
	g.p("")
	g.p("// %sPD is the parse descriptor for %s.", name, d.Name)
	g.p("type %sPD struct {", name)
	g.p("\tPD padsrt.PD")
	for i := range branches {
		g.p("\t%s %s", goFieldName(branches[i].Name), g.pdOf(branches[i].Type))
	}
	g.p("}")
	g.p("")
	g.p("// %sMask controls checking and setting for %s.", name, d.Name)
	g.p("type %sMask struct {", name)
	g.p("\tCompoundLevel padsrt.Mask")
	for i := range branches {
		g.p("\t%s %s", goFieldName(branches[i].Name), g.maskOf(branches[i].Type))
	}
	g.p("}")
	g.p("")
	var mf []maskField
	for i := range branches {
		mf = append(mf, maskField{goFieldName(branches[i].Name), branches[i].Type})
	}
	g.emitMaskCtor(name, mf)
	g.p("var default%sMask = New%sMask(padsrt.CheckAndSet)", name, name)
	g.p("")

	g.p("// Read%s parses one %s from s.", name, d.Name)
	g.p("func Read%s(s *padsrt.Source, m *%sMask, pd *%sPD, rep *%s%s) {", name, name, name, name, g.paramList(d.Params))
	g.p("\tif m == nil {")
	g.p("\t\tm = default%sMask", name)
	g.p("\t}")
	g.p("\tpd.PD = padsrt.PD{}")
	g.p("\trep.Tag = %sTagNone", name)
	g.recordPrologue(d.IsRecord)
	g.p("\tbegin := s.Pos()")
	g.p("\t_ = begin")

	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}

	emitBranchRead := func(i int, depth int) {
		b := &branches[i]
		fn := goFieldName(b.Name)
		g.readCall(b.Type, "rep."+fn, "m."+fn, "pd."+fn, sc, depth, fmt.Sprintf("b%d", i))
		pdh := g.pdHeader(b.Type, "pd."+fn)
		if b.Constraint != nil {
			bsc := newScope(sc)
			bsc.bind(b.Name, "rep."+fn, g.tyOfRef(b.Type))
			cond, _ := g.expr(b.Constraint, bsc)
			ind := strings.Repeat("\t", depth)
			g.p("%sif %s && %s.Nerr == 0 {", ind, g.maskCheck(b.Type, "m."+fn), pdh)
			g.p("%s\tif !(%s) {", ind, cond)
			g.p("%s\t\t%s.SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})", ind, pdh)
			g.p("%s\t}", ind)
			g.p("%s}", ind)
		}
	}

	if d.Switch != nil {
		selCode, selT := g.expr(d.Switch.Selector, sc)
		g.p("\tsel := %s", asNum(selCode, selT))
		g.p("\tswitch {")
		defaultIdx := -1
		bi := 0
		for ci := range d.Switch.Cases {
			cs := &d.Switch.Cases[ci]
			if len(cs.Values) == 0 {
				defaultIdx = bi
				bi++
				continue
			}
			var conds []string
			for _, vx := range cs.Values {
				code, t := g.expr(vx, sc)
				conds = append(conds, fmt.Sprintf("sel == %s", asNum(code, t)))
			}
			g.p("\tcase %s:", strings.Join(conds, " || "))
			emitBranchRead(bi, 2)
			g.p("\t\trep.Tag = %sTag%s", name, GoName(branches[bi].Name))
			g.p("\t\tpd.PD.AddChildErrors(&%s, padsrt.ErrStructField)", g.pdHeader(branches[bi].Type, "pd."+goFieldName(branches[bi].Name)))
			bi++
		}
		g.p("\tdefault:")
		if defaultIdx >= 0 {
			emitBranchRead(defaultIdx, 2)
			g.p("\t\trep.Tag = %sTag%s", name, GoName(branches[defaultIdx].Name))
			g.p("\t\tpd.PD.AddChildErrors(&%s, padsrt.ErrStructField)", g.pdHeader(branches[defaultIdx].Type, "pd."+goFieldName(branches[defaultIdx].Name)))
		} else {
			g.p("\t\tpd.PD.SetError(padsrt.ErrUnionTag, padsrt.Loc{Begin: begin, End: begin})")
		}
		g.p("\t}")
	} else {
		for i := range branches {
			fn := goFieldName(branches[i].Name)
			pdh := g.pdHeader(branches[i].Type, "pd."+fn)
			atomic := g.atomicRef(branches[i].Type) && branches[i].Constraint == nil
			if !atomic {
				g.p("\ts.Checkpoint()")
			}
			emitBranchRead(i, 1)
			g.p("\tif %s.Nerr == 0 {", pdh)
			if !atomic {
				g.p("\t\ts.Commit()")
			}
			g.p("\t\trep.Tag = %sTag%s", name, GoName(branches[i].Name))
			if d.IsRecord {
				g.recordEpilogue(true)
			}
			g.p("\t\treturn")
			g.p("\t}")
			if !atomic {
				g.p("\ts.Restore()")
			}
		}
		g.p("\tpd.PD.SetError(padsrt.ErrUnionMatch, s.LocFrom(begin))")
	}
	g.recordEpilogue(d.IsRecord)
	g.p("}")
	g.p("")
	g.emitUnionAux(d, branches)
}

// ---- array ----

func (g *gen) emitArray(d *dsl.ArrayDecl) {
	name := GoName(d.Name)
	elemGo := g.goType(d.Elem)
	elemPD := g.pdOf(d.Elem)

	g.p("// %s is the in-memory representation of the PADS array %s.", name, d.Name)
	g.p("type %s struct {", name)
	g.p("\tElems []%s", elemGo)
	g.p("}")
	g.p("")
	g.p("// %sPD is the parse descriptor for %s.", name, d.Name)
	g.p("type %sPD struct {", name)
	g.p("\tPD padsrt.PD")
	g.p("\tElems []%s", elemPD)
	g.p("}")
	g.p("")
	g.p("// %sMask controls checking and setting for %s.", name, d.Name)
	g.p("type %sMask struct {", name)
	g.p("\tCompoundLevel padsrt.Mask")
	if g.compoundRef(d.Elem) {
		g.p("\tElem %s", g.maskOf(d.Elem))
	} else {
		g.p("\tElem padsrt.Mask")
	}
	g.p("}")
	g.p("")
	g.p("// New%sMask builds a mask with every control set to base.", name)
	g.p("func New%sMask(base padsrt.Mask) *%sMask {", name, name)
	g.p("\tm := &%sMask{CompoundLevel: base}", name)
	if g.compoundRef(d.Elem) {
		g.p("\tm.Elem = *New%sMask(base)", GoName(d.Elem.Name))
	} else {
		g.p("\tm.Elem = base")
	}
	g.p("\treturn m")
	g.p("}")
	g.p("")
	g.p("var default%sMask = New%sMask(padsrt.CheckAndSet)", name, name)
	g.p("")

	elemIsRecord := false
	if ed, ok := g.desc.Types[d.Elem.Name]; ok && sema.Annot(ed).IsRecord {
		elemIsRecord = true
	}

	g.p("// Read%s parses one %s from s.", name, d.Name)
	g.p("func Read%s(s *padsrt.Source, m *%sMask, pd *%sPD, rep *%s%s) {", name, name, name, name, g.paramList(d.Params))
	g.p("\tif m == nil {")
	g.p("\t\tm = default%sMask", name)
	g.p("\t}")
	g.p("\tpd.PD = padsrt.PD{}")
	g.p("\tpd.Elems = pd.Elems[:0]")
	g.p("\trep.Elems = rep.Elems[:0]")
	g.recordPrologue(d.IsRecord)
	g.p("\tbegin := s.Pos()")
	g.p("\t_ = begin")

	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}
	seqSc := newScope(sc)
	seqSc.bind("elts", "rep.Elems", ty{k: sema.KArray, name: d.Name, elem: tyPtr(g.tyOfRef(d.Elem))})
	seqSc.bind("length", "int64(len(rep.Elems))", tyNum)

	if d.MinSize != nil {
		code, t := g.expr(d.MinSize, sc)
		g.p("\tminSize := %s", asNum(code, t))
	}
	if d.MaxSize != nil {
		code, t := g.expr(d.MaxSize, sc)
		g.p("\tmaxSize := %s", asNum(code, t))
	}

	g.p("\tfor {")
	if d.MaxSize != nil {
		g.p("\t\tif int64(len(rep.Elems)) >= maxSize {")
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	}
	if d.EndedPred != nil {
		cond, _ := g.expr(d.EndedPred, seqSc)
		g.p("\t\tif %s {", cond)
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	}
	if d.Term != nil {
		switch d.Term.Kind {
		case dsl.EORLit:
			g.p("\t\tif s.AtEOR() {")
			g.p("\t\t\tbreak")
			g.p("\t\t}")
		case dsl.EOFLit:
			g.p("\t\tif s.AtEOF() {")
			g.p("\t\t\tbreak")
			g.p("\t\t}")
		default:
			g.p("\t\ts.Checkpoint()")
			g.p("\t\tif %s == padsrt.ErrNone {", g.matchLiteral(d.Term))
			g.p("\t\t\ts.Commit()")
			g.p("\t\t\tbreak")
			g.p("\t\t}")
			g.p("\t\ts.Restore()")
		}
	}
	if elemIsRecord {
		g.p("\t\tif !s.InRecord() && !s.More() {")
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	} else {
		g.p("\t\tif s.AtEOR() || (!s.InRecord() && s.AtEOF()) {")
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	}
	if d.Sep != nil {
		g.p("\t\tif len(rep.Elems) > 0 {")
		g.p("\t\t\tsepBegin := s.Pos()")
		g.p("\t\t\tif code := %s; code != padsrt.ErrNone {", g.matchLiteral(d.Sep))
		g.p("\t\t\t\tpd.PD.SetError(padsrt.ErrArraySep, s.LocFrom(sepBegin))")
		g.p("\t\t\t\tbreak")
		g.p("\t\t\t}")
		g.p("\t\t}")
	}
	g.p("\t\tposBefore := s.Pos().Byte")
	g.p("\t\trep.Elems = append(rep.Elems, %s{})", strings.TrimPrefix(elemGo, "*"))
	g.p("\t\tpd.Elems = append(pd.Elems, %s{})", elemPD)
	g.p("\t\ter := &rep.Elems[len(rep.Elems)-1]")
	g.p("\t\tepd := &pd.Elems[len(pd.Elems)-1]")
	elemMask := "m.Elem"
	g.readCall(d.Elem, "(*er)", elemMask, "(*epd)", sc, 2, "e")
	pdh := g.pdHeader(d.Elem, "(*epd)")
	g.p("\t\tif %s.Nerr > 0 {", pdh)
	g.p("\t\t\tpd.PD.AddChildErrors(&%s, padsrt.ErrArrayElem)", pdh)
	g.p("\t\t\tif s.Pos().Byte == posBefore {")
	g.p("\t\t\t\tbreak")
	g.p("\t\t\t}")
	g.p("\t\t}")
	if d.LastPred != nil {
		lsc := newScope(seqSc)
		lsc.bind("elt", "(*er)", g.tyOfRef(d.Elem))
		cond, _ := g.expr(d.LastPred, lsc)
		g.p("\t\tif %s {", cond)
		g.p("\t\t\tbreak")
		g.p("\t\t}")
	}
	g.p("\t}")

	if d.MinSize != nil {
		g.p("\tif int64(len(rep.Elems)) < minSize && %s {", g.doCheckExpr("m.CompoundLevel"))
		g.p("\t\tpd.PD.SetError(padsrt.ErrArraySize, s.LocFrom(begin))")
		g.p("\t}")
	}
	if d.Where != nil {
		cond, _ := g.expr(d.Where, seqSc)
		g.p("\tif %s && pd.PD.Nerr == 0 {", g.doCheckExpr("m.CompoundLevel"))
		g.p("\t\tif !(%s) {", cond)
		g.p("\t\t\tpd.PD.SetError(padsrt.ErrWhere, s.LocFrom(begin))")
		g.p("\t\t}")
		g.p("\t}")
	}
	g.recordEpilogue(d.IsRecord)
	g.p("}")
	g.p("")
	g.emitArrayAux(d)
}

func tyPtr(t ty) *ty { return &t }

// ---- enum ----

func (g *gen) emitEnum(d *dsl.EnumDecl) {
	name := GoName(d.Name)
	g.p("// %s is the in-memory representation of the PADS enum %s.", name, d.Name)
	g.p("type %s int32", name)
	g.p("const (")
	for i, m := range d.Members {
		if i == 0 {
			g.p("\t%s_%s %s = iota", name, m.Name, name)
		} else {
			g.p("\t%s_%s", name, m.Name)
		}
	}
	g.p(")")
	g.p("")
	g.p("var reprs%s = [...]string{", name)
	for _, m := range d.Members {
		g.p("\t%q,", m.Repr)
	}
	g.p("}")
	g.p("")
	g.p("// String returns the member literal.")
	g.p("func (v %s) String() string {", name)
	g.p("\tif v < 0 || int(v) >= len(reprs%s) {", name)
	g.p("\t\treturn \"<invalid>\"")
	g.p("\t}")
	g.p("\treturn reprs%s[v]", name)
	g.p("}")
	g.p("")

	// Longest-first members for unambiguous matching.
	idx := make([]int, len(d.Members))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return len(d.Members[idx[a]].Repr) > len(d.Members[idx[b]].Repr)
	})

	g.p("// Read%s parses one %s from s.", name, d.Name)
	g.p("func Read%s(s *padsrt.Source, m padsrt.Mask, pd *padsrt.PD, rep *%s) {", name, name)
	g.p("\t*pd = padsrt.PD{}")
	g.p("\tbegin := s.Pos()")
	maxLen := 0
	for _, m := range d.Members {
		if len(m.Repr) > maxLen {
			maxLen = len(m.Repr)
		}
	}
	g.p("\tw := s.Peek(%d)", maxLen)
	g.p("\tswitch {")
	for _, i := range idx {
		m := d.Members[i]
		g.p("\tcase len(w) >= %d && string(w[:%d]) == %q:", len(m.Repr), len(m.Repr), m.Repr)
		g.p("\t\ts.Skip(%d)", len(m.Repr))
		g.p("\t\tif %s {", g.doSetExpr("m"))
		g.p("\t\t\t*rep = %s_%s", name, m.Name)
		g.p("\t\t}")
	}
	g.p("\tdefault:")
	g.p("\t\tpd.SetError(padsrt.ErrInvalidEnum, padsrt.Loc{Begin: begin, End: begin})")
	g.p("\t}")
	g.p("}")
	g.p("")
	g.emitEnumAux(d)
}

// ---- typedef ----

func (g *gen) emitTypedef(d *dsl.TypedefDecl) {
	name := GoName(d.Name)
	underGo := g.goType(d.Base)
	g.p("// %s is the in-memory representation of the PADS typedef %s.", name, d.Name)
	g.p("type %s = %s", name, underGo)
	g.p("")
	g.p("// Read%s parses one %s from s.", name, d.Name)
	g.p("func Read%s(s *padsrt.Source, m padsrt.Mask, pd *padsrt.PD, rep *%s%s) {", name, name, g.paramList(d.Params))
	g.p("\t*pd = padsrt.PD{}")
	sc := newScope(nil)
	for _, p := range d.Params {
		sc.bind(p.Name, "arg_"+p.Name, g.scopeTyForGo(p.Type, g.paramGoType(p.Type)))
	}
	// The base may itself be an enum/typedef (mask by value) or a base
	// type; compound bases are not supported for typedefs by the checker.
	g.readCall(d.Base, "(*rep)", "m", "(*pd)", sc, 1, "t")
	if d.Constraint != nil {
		csc := newScope(sc)
		csc.bind(d.VarName, "(*rep)", g.tyOfRef(d.Base))
		cond, _ := g.expr(d.Constraint, csc)
		g.p("\tif %s && pd.Nerr == 0 {", g.doCheckExpr("m"))
		g.p("\t\tif !(%s) {", cond)
		g.p("\t\t\tpd.SetError(padsrt.ErrConstraint, padsrt.Loc{Begin: s.Pos(), End: s.Pos()})")
		g.p("\t\t}")
		g.p("\t}")
	}
	g.p("}")
	g.p("")
	g.emitTypedefAux(d)
}
