package codegen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pads/internal/dsl"
	"pads/internal/sema"
)

func load(t *testing.T, name string) *sema.Desc {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, errs := dsl.Parse(string(data))
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	return desc
}

func generate(t *testing.T, name, pkg string) string {
	t.Helper()
	desc := load(t, name)
	code, err := Generate(desc, Options{Package: pkg, Source: name})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return code
}

// TestCheckedInCodeIsCurrent ensures the committed generated packages match
// what the compiler produces today (the repo equivalent of go:generate
// drift detection).
func TestCheckedInCodeIsCurrent(t *testing.T) {
	cases := []struct{ desc, pkg, path string }{
		{"clf.pads", "clf", filepath.Join("..", "gen", "clf", "clf.go")},
		{"sirius.pads", "sirius", filepath.Join("..", "gen", "sirius", "sirius.go")},
		{"kitchen.pads", "kitchen", filepath.Join("..", "gen", "kitchen", "kitchen.go")},
	}
	for _, c := range cases {
		want := generate(t, c.desc, c.pkg)
		// The checked-in file was generated with Source: testdata/<desc>.
		want = strings.Replace(want, "from "+c.desc, "from testdata/"+c.desc, 1)
		got, err := os.ReadFile(c.path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("%s is stale; regenerate with: go run ./cmd/padsc -go %s -pkg %s testdata/%s", c.path, c.path, c.pkg, c.desc)
		}
	}
}

// TestFigure6Surface is experiment E3: the generated library for the Sirius
// entry_t declaration exposes the Figure 6 artifact set — representation,
// mask, parse descriptor, read, write, verify, and the tree/value bridge.
func TestFigure6Surface(t *testing.T) {
	code := generate(t, "sirius.pads", "sirius")
	for _, want := range []string{
		// typedef struct { ... } entry_t;
		"type Entry_t struct {",
		"Header Order_header_t",
		"Events EventSeq",
		// entry_t_m with struct-level control and nested masks.
		"type Entry_tMask struct {",
		"CompoundLevel padsrt.Mask",
		// entry_t_pd with pstate/nerr/errCode/loc via padsrt.PD + nested.
		"type Entry_tPD struct {",
		"PD padsrt.PD",
		// entry_t_read / entry_t_write2io.
		"func ReadEntry_t(s *padsrt.Source, m *Entry_tMask, pd *Entry_tPD, rep *Entry_t)",
		"func WriteEntry_t(dst []byte, rep *Entry_t) []byte",
		// entry_t_m_init / entry_t_verify.
		"func NewEntry_tMask(base padsrt.Mask) *Entry_tMask",
		"func VerifyEntry_t(rep *Entry_t) bool",
		// The Galax-node / accumulator bridge.
		"func Entry_tToValue(rep *Entry_t, pd *Entry_tPD) value.Value",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated library missing %q", want)
		}
	}
}

// TestLeverageRatio is experiment E4: section 4 reports the 68-line Sirius
// description expanding to 1432+6471 lines of C (~116x). The Go backend's
// expansion is smaller (Go needs no headers and the tools are shared), but
// the description must still be at least an order of magnitude smaller than
// what it generates.
func TestLeverageRatio(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "sirius.pads"))
	if err != nil {
		t.Fatal(err)
	}
	descLines := strings.Count(string(data), "\n")
	genLines := strings.Count(generate(t, "sirius.pads", "sirius"), "\n")
	ratio := float64(genLines) / float64(descLines)
	t.Logf("E4 leverage: %d description lines -> %d generated lines (%.1fx); paper: 68 -> 7903 (116x)", descLines, genLines, ratio)
	if ratio < 10 {
		t.Errorf("leverage ratio %.1f below 10x", ratio)
	}
}

func TestGeneratedCodeIsGofmtStable(t *testing.T) {
	// Generate must produce format.Source-clean output (Generate errors
	// otherwise), so compiling both descriptions suffices.
	generate(t, "clf.pads", "clf")
	generate(t, "sirius.pads", "sirius")
}

func TestGoNameMapping(t *testing.T) {
	cases := map[string]string{"entry_t": "Entry_t", "x": "X", "": "X", "Foo": "Foo"}
	for in, want := range cases {
		if got := GoName(in); got != want {
			t.Errorf("GoName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGenerateAllFeatures(t *testing.T) {
	// A description exercising every construct the backend supports.
	src := `
Penum kind_t { AA, BB, CC };
Ptypedef Puint32 id_t : id_t x => { x > 0 };
bool positive(Pint32 v) { if (v > 0) return true; return false; };
Pstruct pair_t (:Puint32 n:) {
  Pstring_FW(:n:) tagname; ':';
  Pint32 v : positive(v);
};
Punion alt_t {
  Pip ip;
  Pchar dash : dash == '-';
  Pstring(:' ':) word;
};
Punion sw_t (:Puint8 k:) Pswitch (k) {
  Pcase 1: Puint16 small;
  Pcase 2, 3: Puint32 big;
  Pdefault: Pchar other;
};
Parray nums_t {
  Puint32[2..5] : Psep (',') && Plast (elt == 0);
} Pwhere { Pforall (i Pin [0..length-1] : elts[i] < 1000000) };
Precord Pstruct row_t {
  kind_t kind; '|';
  id_t id; '|';
  Puint8 k; '|';
  sw_t(:k:) sw; '|';
  pair_t(:3:) pair; '|';
  alt_t alt; '|';
  Popt Pfloat64 ratio; '|';
  nums_t nums; '|';
  Pdate(:'|':) when; '|';
  Pbcd(:5:) amount;
};
Psource Parray rows_t { row_t[]; };
`
	prog, errs := dsl.Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	desc, serrs := sema.Check(prog)
	if len(serrs) > 0 {
		t.Fatalf("check: %v", serrs[0])
	}
	code, err := Generate(desc, Options{Package: "all", Source: "inline"})
	if err != nil {
		t.Fatalf("generate: %v\n%s", err, code)
	}
	for _, want := range []string{
		"func fn_positive(p_v int64) bool",
		"type Sw_tTag int",
		"case sel == int64(2) || sel == int64(3):",
		"padsrt.ReadBCD(s, 5)",
		"padsrt.Opt[float64]",
		"minSize :=",
		"maxSize :=",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}
