package codegen

import (
	"fmt"
	"strings"

	"pads/internal/dsl"
	"pads/internal/sema"
)

// ty is the translator's view of an expression's type.
type ty struct {
	k    sema.Kind
	name string // declaration name for compound/enum types
	elem *ty    // array element / opt inner
}

var (
	tyNum   = ty{k: sema.KInt}
	tyFloat = ty{k: sema.KFloat}
	tyBool  = ty{k: sema.KBool}
	tyStr   = ty{k: sema.KString}
)

// scope maps description identifiers to Go expressions with their types.
type scope struct {
	vars   map[string]binding
	parent *scope
}

type binding struct {
	code string
	t    ty
}

func newScope(parent *scope) *scope { return &scope{vars: map[string]binding{}, parent: parent} }

func (s *scope) bind(name, code string, t ty) { s.vars[name] = binding{code, t} }

func (s *scope) lookup(name string) (binding, bool) {
	for c := s; c != nil; c = c.parent {
		if b, ok := c.vars[name]; ok {
			return b, true
		}
	}
	return binding{}, false
}

// tyOfRef computes the translator type of a type reference.
func (g *gen) tyOfRef(tr dsl.TypeRef) ty {
	if tr.Opt {
		inner := tr
		inner.Opt = false
		it := g.tyOfRef(inner)
		return ty{k: sema.KOpt, elem: &it}
	}
	if b := sema.LookupBase(tr.Name); b != nil {
		return ty{k: b.Kind}
	}
	switch d := g.desc.Types[tr.Name].(type) {
	case *dsl.StructDecl:
		return ty{k: sema.KStruct, name: d.Name}
	case *dsl.UnionDecl:
		return ty{k: sema.KUnion, name: d.Name}
	case *dsl.ArrayDecl:
		et := g.tyOfRef(d.Elem)
		return ty{k: sema.KArray, name: d.Name, elem: &et}
	case *dsl.EnumDecl:
		return ty{k: sema.KEnum, name: d.Name}
	case *dsl.TypedefDecl:
		return g.tyOfRef(d.Base)
	}
	return tyNum
}

func (g *gen) tyOfParam(typeName string) ty {
	if typeName == "bool" {
		return tyBool
	}
	if b := sema.LookupBase(typeName); b != nil {
		return ty{k: b.Kind}
	}
	if d, ok := g.desc.Types[typeName]; ok {
		return g.tyOfRef(dsl.TypeRef{Name: d.DeclName()})
	}
	return tyNum
}

// asNum renders code as an int64 (or float64) expression.
func asNum(code string, t ty) string {
	switch t.k {
	case sema.KDate:
		return "(" + code + ").Sec"
	case sema.KFloat:
		return code
	case sema.KInt:
		// May already be int64, but widths vary; a conversion is free.
		return "int64(" + code + ")"
	default:
		return "int64(" + code + ")"
	}
}

func isNumKind(k sema.Kind) bool {
	switch k {
	case sema.KUint, sema.KInt, sema.KChar, sema.KDate, sema.KIP, sema.KEnum, sema.KFloat:
		return true
	}
	return false
}

// convert renders code of type t as the requested Go type.
func convert(code string, t ty, goType string) string {
	switch goType {
	case "int64":
		return asNum(code, t)
	case "float64":
		if t.k == sema.KFloat {
			return "float64(" + code + ")"
		}
		return "float64(" + asNum(code, t) + ")"
	case "string":
		if t.k == sema.KChar {
			return "string(" + code + ")"
		}
		return code
	case "bool":
		return code
	default:
		return code
	}
}

// expr translates a description expression to Go source.
func (g *gen) expr(e dsl.Expr, sc *scope) (string, ty) {
	switch e := e.(type) {
	case *dsl.IntExpr:
		return fmt.Sprintf("%d", e.Val), tyNum
	case *dsl.FloatExpr:
		return fmt.Sprintf("float64(%g)", e.Val), tyFloat
	case *dsl.CharExpr:
		return fmt.Sprintf("int64(%q)", rune(e.Val)), ty{k: sema.KChar}
	case *dsl.StrExpr:
		return fmt.Sprintf("%q", e.Val), tyStr
	case *dsl.BoolExpr:
		if e.Val {
			return "true", tyBool
		}
		return "false", tyBool
	case *dsl.RegexpExpr:
		return fmt.Sprintf("%q", e.Src), tyStr
	case *dsl.EORExpr, *dsl.EOFExpr:
		return "int64(0)", tyNum
	case *dsl.IdentExpr:
		if b, ok := sc.lookup(e.Name); ok {
			return b.code, b.t
		}
		if en, ok := g.desc.EnumOf[e.Name]; ok {
			return fmt.Sprintf("%s_%s", GoName(en.Name), e.Name), ty{k: sema.KEnum, name: en.Name}
		}
		g.err = fmt.Errorf("codegen: %s: unresolved identifier %s", e.Pos, e.Name)
		return "0", tyNum
	case *dsl.CallExpr:
		fn := g.desc.Funcs[e.Func]
		if fn == nil {
			g.err = fmt.Errorf("codegen: %s: unknown function %s", e.Pos, e.Func)
			return "false", tyBool
		}
		var b strings.Builder
		fmt.Fprintf(&b, "fn_%s(", e.Func)
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			code, t := g.expr(a, sc)
			b.WriteString(convert(code, t, g.paramGoType(fn.Params[i].Type)))
		}
		b.WriteString(")")
		return b.String(), g.tyOfParam(fn.RetType)
	case *dsl.DotExpr:
		code, t := g.expr(e.X, sc)
		if t.k == sema.KOpt && t.elem != nil {
			// Reading through an optional accesses the (possibly unset)
			// value, the C-struct semantics of the original system.
			code += ".Val"
			t = *t.elem
		}
		ft, ok := g.fieldTy(t, e.Field)
		if !ok {
			g.err = fmt.Errorf("codegen: %s: %s has no field %s", e.Pos, t.name, e.Field)
			return "0", tyNum
		}
		return code + "." + goFieldName(e.Field), ft
	case *dsl.IndexExpr:
		code, t := g.expr(e.X, sc)
		idx, it := g.expr(e.Index, sc)
		elem := tyNum
		if t.k == sema.KArray && t.elem != nil {
			elem = *t.elem
		}
		return fmt.Sprintf("%s[%s]", code, "int("+asNum(idx, it)+")"), elem
	case *dsl.UnaryExpr:
		code, t := g.expr(e.X, sc)
		if e.Op == dsl.NOT {
			return "!(" + code + ")", tyBool
		}
		if t.k == sema.KFloat {
			return "-(" + code + ")", tyFloat
		}
		return "-(" + asNum(code, t) + ")", tyNum
	case *dsl.BinaryExpr:
		return g.binExpr(e, sc)
	case *dsl.CondExpr:
		c, _ := g.expr(e.Cond, sc)
		a, at := g.expr(e.Then, sc)
		b, bt := g.expr(e.Else, sc)
		goT := "int64"
		switch {
		case at.k == sema.KBool:
			goT = "bool"
		case at.k == sema.KString:
			goT = "string"
		case at.k == sema.KFloat || bt.k == sema.KFloat:
			goT = "float64"
		}
		return fmt.Sprintf("func() %s { if %s { return %s }; return %s }()",
			goT, c, convert(a, at, goT), convert(b, bt, goT)), at
	case *dsl.ForallExpr:
		lo, lot := g.expr(e.Lo, sc)
		hi, hit := g.expr(e.Hi, sc)
		inner := newScope(sc)
		v := "q_" + e.Var
		inner.bind(e.Var, v, tyNum)
		body, _ := g.expr(e.Body, inner)
		if e.Exists {
			return fmt.Sprintf(
				"func() bool { for %s := %s; %s <= %s; %s++ { if %s { return true } }; return false }()",
				v, asNum(lo, lot), v, asNum(hi, hit), v, body), tyBool
		}
		return fmt.Sprintf(
			"func() bool { for %s := %s; %s <= %s; %s++ { if !(%s) { return false } }; return true }()",
			v, asNum(lo, lot), v, asNum(hi, hit), v, body), tyBool
	}
	g.err = fmt.Errorf("codegen: unsupported expression %T", e)
	return "0", tyNum
}

func (g *gen) binExpr(e *dsl.BinaryExpr, sc *scope) (string, ty) {
	l, lt := g.expr(e.L, sc)
	r, rt := g.expr(e.R, sc)
	op := map[dsl.Kind]string{
		dsl.ANDAND: "&&", dsl.OROR: "||",
		dsl.EQ: "==", dsl.NE: "!=", dsl.LT: "<", dsl.LE: "<=", dsl.GT: ">", dsl.GE: ">=",
		dsl.PLUS: "+", dsl.MINUS: "-", dsl.STAR: "*", dsl.SLASH: "/", dsl.PERCENT: "%",
	}[e.Op]

	switch e.Op {
	case dsl.ANDAND, dsl.OROR:
		return fmt.Sprintf("(%s %s %s)", l, op, r), tyBool
	case dsl.EQ, dsl.NE, dsl.LT, dsl.LE, dsl.GT, dsl.GE:
		switch {
		case lt.k == sema.KString && rt.k == sema.KString:
			return fmt.Sprintf("(%s %s %s)", l, op, r), tyBool
		case lt.k == sema.KString && rt.k == sema.KChar:
			return fmt.Sprintf("(%s %s string(rune(%s)))", l, op, asNum(r, rt)), tyBool
		case lt.k == sema.KChar && rt.k == sema.KString:
			return fmt.Sprintf("(string(rune(%s)) %s %s)", asNum(l, lt), op, r), tyBool
		case lt.k == sema.KBool && rt.k == sema.KBool:
			return fmt.Sprintf("(%s %s %s)", l, op, r), tyBool
		case lt.k == sema.KFloat || rt.k == sema.KFloat:
			return fmt.Sprintf("(%s %s %s)", convert(l, lt, "float64"), op, convert(r, rt, "float64")), tyBool
		default:
			return fmt.Sprintf("(%s %s %s)", asNum(l, lt), op, asNum(r, rt)), tyBool
		}
	default: // arithmetic
		if lt.k == sema.KFloat || rt.k == sema.KFloat {
			return fmt.Sprintf("(%s %s %s)", convert(l, lt, "float64"), op, convert(r, rt, "float64")), tyFloat
		}
		return fmt.Sprintf("(%s %s %s)", asNum(l, lt), op, asNum(r, rt)), tyNum
	}
}

// fieldTy resolves a field's translator type.
func (g *gen) fieldTy(t ty, field string) (ty, bool) {
	switch t.k {
	case sema.KStruct:
		d, _ := g.desc.Types[t.name].(*dsl.StructDecl)
		if d == nil {
			return tyNum, false
		}
		for _, it := range d.Items {
			if it.Field != nil && it.Field.Name == field {
				return g.tyOfRef(it.Field.Type), true
			}
		}
	case sema.KUnion:
		d, _ := g.desc.Types[t.name].(*dsl.UnionDecl)
		if d == nil {
			return tyNum, false
		}
		branches := d.Branches
		if d.Switch != nil {
			for i := range d.Switch.Cases {
				branches = append(branches, d.Switch.Cases[i].Field)
			}
		}
		for i := range branches {
			if branches[i].Name == field {
				return g.tyOfRef(branches[i].Type), true
			}
		}
	}
	return tyNum, false
}

// ---- predicate functions ----

func (g *gen) emitFunc(fd *dsl.FuncDecl) {
	sc := newScope(nil)
	var params strings.Builder
	for i, p := range fd.Params {
		if i > 0 {
			params.WriteString(", ")
		}
		goT := g.paramGoType(p.Type)
		fmt.Fprintf(&params, "p_%s %s", p.Name, goT)
		sc.bind(p.Name, "p_"+p.Name, g.scopeTyForGo(p.Type, goT))
	}
	ret := g.paramGoType(fd.RetType)
	g.p("func fn_%s(%s) %s {", fd.Name, params.String(), ret)
	g.emitStmts(fd.Body, sc, ret, 1)
	// A final return satisfies the compiler for bodies whose returns all
	// live inside conditionals; skip it when the body already ends in one.
	endsInReturn := false
	if len(fd.Body) > 0 {
		_, endsInReturn = fd.Body[len(fd.Body)-1].(*dsl.ReturnStmt)
	}
	if !endsInReturn {
		switch ret {
		case "bool":
			g.p("\treturn false")
		case "string":
			g.p("\treturn \"\"")
		default:
			g.p("\treturn 0")
		}
	}
	g.p("}")
	g.p("")
}

// scopeTyForGo picks the translator type a parameter binding should carry:
// numeric parameters are passed as int64, so their scope type is numeric
// even when the declared type is an enum or char.
func (g *gen) scopeTyForGo(declType, goT string) ty {
	switch goT {
	case "int64":
		return tyNum
	case "float64":
		return tyFloat
	case "string":
		return tyStr
	case "bool":
		return tyBool
	}
	return g.tyOfParam(declType)
}

func (g *gen) emitStmts(stmts []dsl.Stmt, sc *scope, ret string, depth int) {
	ind := strings.Repeat("\t", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *dsl.VarStmt:
			goT := g.paramGoType(s.Type)
			code, t := g.expr(s.Init, sc)
			g.p("%svar v_%s %s = %s", ind, s.Name, goT, convert(code, t, goT))
			g.p("%s_ = v_%s", ind, s.Name)
			sc.bind(s.Name, "v_"+s.Name, g.scopeTyForGo(s.Type, goT))
		case *dsl.AssignStmt:
			b, ok := sc.lookup(s.Name)
			if !ok {
				g.err = fmt.Errorf("codegen: assignment to unknown %s", s.Name)
				continue
			}
			code, t := g.expr(s.Val, sc)
			goT := "int64"
			switch b.t.k {
			case sema.KBool:
				goT = "bool"
			case sema.KString:
				goT = "string"
			case sema.KFloat:
				goT = "float64"
			}
			g.p("%s%s = %s", ind, b.code, convert(code, t, goT))
		case *dsl.IfStmt:
			cond, _ := g.expr(s.Cond, sc)
			g.p("%sif %s {", ind, cond)
			g.emitStmts(s.Then, newScope(sc), ret, depth+1)
			if len(s.Else) > 0 {
				g.p("%s} else {", ind)
				g.emitStmts(s.Else, newScope(sc), ret, depth+1)
			}
			g.p("%s}", ind)
		case *dsl.ReturnStmt:
			code, t := g.expr(s.Val, sc)
			g.p("%sreturn %s", ind, convert(code, t, ret))
		case *dsl.ExprStmt:
			code, _ := g.expr(s.X, sc)
			g.p("%s_ = %s", ind, code)
		}
	}
}
