package pads_test

// End-to-end fault-tolerance tests (docs/ROBUSTNESS.md): the runtime
// invariants under injected faults are that nothing panics, transient read
// errors are survivable with retries and sticky without, data corruption
// stays localized in parse descriptors, dead-letter output is byte-identical
// at any worker count, and error budgets abort scans deterministically.

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"pads/internal/accum"
	"pads/internal/core"
	"pads/internal/fault"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/parallel"
	"pads/internal/telemetry"
)

func compileCLF(t *testing.T) *core.Description {
	t.Helper()
	desc, err := core.CompileFile("testdata/clf.pads")
	if err != nil {
		t.Fatal(err)
	}
	return desc
}

// TestFaultTransientRetryMatchesClean: a reader that injects short reads
// and transient errors must — with retries enabled — produce exactly the
// run a clean reader produces: same record count, same accumulator report.
func TestFaultTransientRetryMatchesClean(t *testing.T) {
	benchCorpus(nil)
	desc := compileCLF(t)
	cfg := accum.DefaultConfig()

	cleanAcc, cleanN, err := desc.AccumulateReader(bytes.NewReader(clfData), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	faulty := fault.NewReader(bytes.NewReader(clfData),
		fault.Config{Seed: 7, ShortReadProb: 0.3, TransientProb: 0.3})
	opts := []padsrt.SourceOption{padsrt.WithRetry(8, 0)}
	gotAcc, gotN, err := desc.AccumulateReader(faulty, opts, cfg)
	if err != nil {
		t.Fatalf("faulty reader with retries: %v", err)
	}
	if gotN != cleanN {
		t.Fatalf("records = %d, want %d", gotN, cleanN)
	}
	var want, got bytes.Buffer
	cleanAcc.Report(&want, "<top>")
	gotAcc.Report(&got, "<top>")
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("accumulator report differs between clean and retried-faulty runs")
	}
}

// TestFaultTransientNoRetrySticky: without retries the first transient
// read error surfaces as a sticky Source error — the scan stops early and
// reports it; nothing panics.
func TestFaultTransientNoRetrySticky(t *testing.T) {
	benchCorpus(nil)
	desc := compileCLF(t)

	faulty := fault.NewReader(bytes.NewReader(clfData),
		fault.Config{Seed: 7, TransientProb: 1, MaxTransientRun: 1})
	_, n, err := desc.AccumulateReader(faulty, nil, accum.DefaultConfig())
	if err == nil {
		t.Fatal("transient failure without retries did not surface")
	}
	if !padsrt.IsTransient(err) {
		t.Fatalf("err = %v, not recognized as transient", err)
	}
	if n > 0 {
		// The first read already failed; no records can have been parsed.
		t.Fatalf("parsed %d records past a failed first read", n)
	}
}

// TestCorruptionLocalizedDeterministic: flipping bytes inside record bodies
// (newlines preserved) must keep errors inside per-record parse descriptors
// — the scan completes — and the dead-letter stream must be byte-identical
// across repeated runs and across worker counts.
func TestCorruptionLocalizedDeterministic(t *testing.T) {
	benchCorpus(nil)
	desc := compileCLF(t)
	corrupt := fault.CorruptKeeping(clfData, 11, 0.0005, '\n')
	if bytes.Equal(corrupt, clfData) {
		t.Fatal("corruption flipped nothing; the test would prove nothing")
	}
	cfg := accum.DefaultConfig()

	scanSeq := func() ([]byte, int) {
		var q bytes.Buffer
		desc.Policy = &interp.Policy{Sink: interp.NewQuarantine(&q)}
		defer func() { desc.Policy = nil }()
		_, n, err := desc.AccumulateReader(bytes.NewReader(corrupt), nil, cfg)
		if err != nil {
			t.Fatalf("sequential scan of corrupted data failed hard: %v", err)
		}
		return q.Bytes(), n
	}
	wantQ, wantN := scanSeq()
	if len(wantQ) == 0 {
		t.Fatal("no records quarantined despite corruption")
	}
	gotQ, gotN := scanSeq()
	if !bytes.Equal(wantQ, gotQ) || gotN != wantN {
		t.Fatal("repeated sequential scans diverged")
	}

	for _, workers := range []int{1, 4} {
		var q bytes.Buffer
		desc.Policy = &interp.Policy{Sink: interp.NewQuarantine(&q)}
		_, n, err := desc.AccumulateParallel(corrupt, nil, cfg, workers)
		desc.Policy = nil
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != wantN {
			t.Fatalf("workers=%d: %d records, want %d", workers, n, wantN)
		}
		if !bytes.Equal(q.Bytes(), wantQ) {
			t.Fatalf("workers=%d: quarantine stream differs from sequential (%d vs %d bytes)",
				workers, q.Len(), len(wantQ))
		}
	}
}

// TestErrorBudgetAborts: budgets trip deterministically — fail-fast on the
// first errored record, max-errors at the threshold — and surface as
// *BudgetError on both the sequential and the parallel path.
func TestErrorBudgetAborts(t *testing.T) {
	benchCorpus(nil)
	desc := compileCLF(t)
	corrupt := fault.CorruptKeeping(clfData, 11, 0.0005, '\n')
	cfg := accum.DefaultConfig()

	desc.Policy = &interp.Policy{FailFast: true}
	_, _, err := desc.AccumulateReader(bytes.NewReader(corrupt), nil, cfg)
	var be *interp.BudgetError
	if !errors.As(err, &be) || be.Errored != 1 {
		t.Fatalf("fail-fast: err = %v, want BudgetError with Errored=1", err)
	}

	desc.Policy = &interp.Policy{MaxErrors: 3}
	_, _, err = desc.AccumulateReader(bytes.NewReader(corrupt), nil, cfg)
	if !errors.As(err, &be) || be.Errored != 3 {
		t.Fatalf("max-errors=3 sequential: err = %v, want BudgetError with Errored=3", err)
	}

	// Parallel budgets are enforced on merged counts at chunk boundaries:
	// the abort is still deterministic, but Errored may exceed the
	// threshold by up to a chunk's worth of errors.
	_, _, err = desc.AccumulateParallel(corrupt, nil, cfg, 4)
	desc.Policy = nil
	if !errors.As(err, &be) || be.Errored < 3 {
		t.Fatalf("max-errors=3 parallel: err = %v, want BudgetError with Errored>=3", err)
	}
}

// TestParallelContainmentRescue: a worker that panics on its first attempt
// at one chunk must not kill the run — the chunk is re-parsed on the
// coordinator, the merged result matches a clean run, and the containment
// counters record exactly one failure, retry, and rescue.
func TestParallelContainmentRescue(t *testing.T) {
	data := []byte(strings.Repeat("0123456789abcde\n", 1<<14)) // 256 KiB
	var mu sync.Mutex
	failed := false

	run := func(poison bool, st *telemetry.Stats) int {
		total := 0
		err := parallel.Run(data,
			parallel.Options{Workers: 4, MinChunk: 1 << 12, Stats: st},
			func(src *padsrt.Source, c parallel.Chunk) (int, error) {
				if poison && c.Index == 1 {
					mu.Lock()
					first := !failed
					failed = true
					mu.Unlock()
					if first {
						panic("injected worker fault")
					}
				}
				n := 0
				for src.More() {
					ok, err := src.BeginRecord()
					if err != nil {
						return n, err
					}
					if !ok {
						break
					}
					src.SkipToEOR()
					src.EndRecord(&padsrt.PD{})
					n++
				}
				return n, nil
			},
			func(c parallel.Chunk, n int) error {
				total += n
				return nil
			})
		if err != nil {
			t.Fatalf("poison=%v: %v", poison, err)
		}
		return total
	}

	want := run(false, nil)
	st := &telemetry.Stats{}
	got := run(true, st)
	if got != want {
		t.Fatalf("rescued run counted %d records, clean run %d", got, want)
	}
	f := st.Faults
	if f.ChunkFailures != 1 || f.ChunkRetries != 1 || f.ChunkRescues != 1 {
		t.Fatalf("fault counters = %+v, want exactly one failure/retry/rescue", f)
	}
}

// TestQuarantineDeterministicAcrossWorkers: under a hard fault that strikes
// mid-record — framing-destroying corruption that merges records until the
// MaxRecordLen clamp cuts them — the dead-letter stream must still be
// byte-identical at every worker count. This is the strongest determinism
// claim in docs/ROBUSTNESS.md: chunk-ordered Batch flushing makes worker
// scheduling invisible even when the records themselves were torn apart.
func TestQuarantineDeterministicAcrossWorkers(t *testing.T) {
	benchCorpus(nil)
	desc := compileCLF(t)
	// Corrupt WITHOUT preserving '\n': some newlines flip away, adjacent
	// records merge, and the merged bodies blow through the record clamp —
	// a hard mid-record fault, not a polite per-field error.
	corrupt := fault.Corrupt(clfData, 23, 0.0008)
	if bytes.Count(corrupt, []byte("\n")) == bytes.Count(clfData, []byte("\n")) {
		t.Fatal("corruption left framing intact; the test would prove nothing")
	}
	opts := []padsrt.SourceOption{padsrt.WithLimits(padsrt.Limits{MaxRecordLen: 512})}
	cfg := accum.DefaultConfig()

	var wantQ []byte
	wantN := 0
	{
		var q bytes.Buffer
		desc.Policy = &interp.Policy{Sink: interp.NewQuarantine(&q)}
		_, n, err := desc.AccumulateReader(bytes.NewReader(corrupt), opts, cfg)
		desc.Policy = nil
		if err != nil {
			t.Fatalf("sequential scan of torn data failed hard: %v", err)
		}
		wantQ, wantN = q.Bytes(), n
	}
	if len(wantQ) == 0 {
		t.Fatal("no records quarantined despite torn framing")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		var q bytes.Buffer
		desc.Policy = &interp.Policy{Sink: interp.NewQuarantine(&q)}
		_, n, err := desc.AccumulateParallel(corrupt, opts, cfg, workers)
		desc.Policy = nil
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != wantN {
			t.Fatalf("workers=%d: %d records, want %d", workers, n, wantN)
		}
		if !bytes.Equal(q.Bytes(), wantQ) {
			t.Fatalf("workers=%d: quarantine differs from sequential (%d vs %d bytes)",
				workers, q.Len(), len(wantQ))
		}
	}
}
