package pads_test

// The benchmark harness: one benchmark per evaluation artifact of the paper
// (see DESIGN.md's experiment index) plus the ablations it motivates.
//
//	go test -bench=. -benchmem .
//
// E10 (Figure 10): BenchmarkFig10_* — generated-parser vetting/selection vs
// the Perl-equivalent baselines. The paper reports PADS 2.03x faster on
// vetting and 1.23x on selection.
// E11 (section 7): BenchmarkCountRecords_* — the 81s-vs-124s baseline
// (PADS 1.53x faster).
// A1/A2/A3: compiled-vs-interpreted parsing, mask cost, accumulator cost.

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"pads/internal/accum"
	"pads/internal/baseline"
	"pads/internal/core"
	"pads/internal/datagen"
	"pads/internal/fig10"
	"pads/internal/gen/clf"
	"pads/internal/gen/sirius"
	"pads/internal/gen/siriusset"
	"pads/internal/padsrt"
	"pads/internal/telemetry/prof"
)

const benchRecords = 20000

var (
	benchOnce   sync.Once
	siriusData  []byte
	siriusClean []byte
	clfData     []byte
	benchState  = datagen.StateName(0)
)

func benchCorpus(b *testing.B) {
	if b != nil {
		b.Helper()
	}
	benchOnce.Do(func() {
		var buf bytes.Buffer
		if _, err := datagen.Sirius(&buf, datagen.DefaultSirius(benchRecords)); err != nil {
			panic(err)
		}
		siriusData = buf.Bytes()
		var cleanBuf bytes.Buffer
		if _, err := fig10.PadsVet(bytes.NewReader(siriusData), &cleanBuf, io.Discard); err != nil {
			panic(err)
		}
		siriusClean = cleanBuf.Bytes()
		var cbuf bytes.Buffer
		if _, err := datagen.CLF(&cbuf, datagen.DefaultCLF(benchRecords)); err != nil {
			panic(err)
		}
		clfData = cbuf.Bytes()
	})
}

// ---- E10: Figure 10 ----

func BenchmarkFig10_PadsVet(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(siriusData)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fig10.PadsVet(bytes.NewReader(siriusData), io.Discard, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_PerlVet(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(siriusData)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.SiriusVet(bytes.NewReader(siriusData), io.Discard, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_PadsSelect(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(siriusClean)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fig10.PadsSelect(bytes.NewReader(siriusClean), io.Discard, benchState); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_PerlSelect(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(siriusClean)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.SiriusSelect(bytes.NewReader(siriusClean), io.Discard, benchState); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E11: the record-counting baseline ----

func BenchmarkCountRecords_Pads(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(siriusClean)))
	for i := 0; i < b.N; i++ {
		if _, err := fig10.PadsCount(bytes.NewReader(siriusClean)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountRecords_Perl(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(siriusClean)))
	for i := 0; i < b.N; i++ {
		if _, err := baseline.CountRecords(bytes.NewReader(siriusClean)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- A1: compiled vs interpreted parsing (section 1 motivates compiling
// descriptions "rather than simply interpret[ing]" them) ----

func BenchmarkAblation_CompiledVsInterp_Compiled(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(siriusClean)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := padsrt.NewBytesSource(siriusClean)
		var hdr sirius.Summary_header_t
		var hdrPD sirius.Summary_header_tPD
		sirius.ReadSummary_header_t(s, nil, &hdrPD, &hdr)
		var e sirius.Entry_t
		var epd sirius.Entry_tPD
		for s.More() {
			sirius.ReadEntry_t(s, nil, &epd, &e)
		}
	}
}

func BenchmarkAblation_CompiledVsInterp_Interp(b *testing.B) {
	benchCorpus(b)
	desc, err := core.CompileFile("testdata/sirius.pads")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(siriusClean)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := padsrt.NewBytesSource(siriusClean)
		rr, err := desc.Records(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		for rr.More() {
			rr.Read()
		}
	}
}

// ---- Profiler overhead (docs/OBSERVABILITY.md): an attached-but-idle ----
// ---- profiler must be free; sampling cost must scale with 1/Every.   ----

func benchInterpProfiled(b *testing.B, mk func() *prof.Profiler) {
	benchCorpus(b)
	desc, err := core.CompileFile("testdata/sirius.pads")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(siriusClean)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := mk()
		desc.ObserveProf(p)
		s := padsrt.NewBytesSource(siriusClean, padsrt.WithProf(p))
		rr, err := desc.Records(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		for rr.More() {
			rr.Read()
		}
	}
}

func BenchmarkProfiler_Disabled(b *testing.B) {
	benchInterpProfiled(b, func() *prof.Profiler { return nil })
}

func BenchmarkProfiler_SampleAll(b *testing.B) {
	benchInterpProfiled(b, func() *prof.Profiler { return prof.New(prof.Options{}) })
}

func BenchmarkProfiler_Sample64(b *testing.B) {
	benchInterpProfiled(b, func() *prof.Profiler { return prof.New(prof.Options{Every: 64}) })
}

// ---- A2: mask cost (the run-time knob masks exist to control) ----

func benchMask(b *testing.B, mask *sirius.Entry_tMask) {
	benchCorpus(b)
	b.SetBytes(int64(len(siriusClean)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := padsrt.NewBytesSource(siriusClean)
		var hdr sirius.Summary_header_t
		var hdrPD sirius.Summary_header_tPD
		sirius.ReadSummary_header_t(s, nil, &hdrPD, &hdr)
		var e sirius.Entry_t
		var epd sirius.Entry_tPD
		for s.More() {
			sirius.ReadEntry_t(s, mask, &epd, &e)
		}
	}
}

func BenchmarkAblation_Mask_CheckAndSet(b *testing.B) {
	benchMask(b, sirius.NewEntry_tMask(padsrt.CheckAndSet))
}

func BenchmarkAblation_Mask_SetOnly(b *testing.B) {
	benchMask(b, sirius.NewEntry_tMask(padsrt.Set))
}

func BenchmarkAblation_Mask_Ignore(b *testing.B) {
	benchMask(b, sirius.NewEntry_tMask(padsrt.Ignore))
}

// ---- A3: accumulator overhead (section 5.2) ----

func BenchmarkAblation_Accum_ParseOnly(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(clfData)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := padsrt.NewBytesSource(clfData)
		var e clf.Entry_t
		var epd clf.Entry_tPD
		for s.More() {
			clf.ReadEntry_t(s, nil, &epd, &e)
		}
	}
}

func BenchmarkAblation_Accum_ParseAndAccumulate(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(clfData)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := padsrt.NewBytesSource(clfData)
		acc := accum.New(accum.DefaultConfig())
		var e clf.Entry_t
		var epd clf.Entry_tPD
		for s.More() {
			clf.ReadEntry_t(s, nil, &epd, &e)
			acc.Add(clf.Entry_tToValue(&e, &epd))
		}
	}
}

// ---- supporting micro-benchmarks ----

func BenchmarkCLFParse_Compiled(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(clfData)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := padsrt.NewBytesSource(clfData)
		var e clf.Entry_t
		var epd clf.Entry_tPD
		for s.More() {
			clf.ReadEntry_t(s, nil, &epd, &e)
		}
	}
}

func BenchmarkWriteBack_Sirius(b *testing.B) {
	benchCorpus(b)
	s := padsrt.NewBytesSource(siriusClean)
	var hdr sirius.Summary_header_t
	var hdrPD sirius.Summary_header_tPD
	sirius.ReadSummary_header_t(s, nil, &hdrPD, &hdr)
	var entries []sirius.Entry_t
	for s.More() {
		var e sirius.Entry_t
		var epd sirius.Entry_tPD
		sirius.ReadEntry_t(s, nil, &epd, &e)
		entries = append(entries, e)
	}
	b.SetBytes(int64(len(siriusClean)))
	b.ReportAllocs()
	b.ResetTimer()
	var out []byte
	for i := 0; i < b.N; i++ {
		out = out[:0]
		out = sirius.WriteSummary_header_t(out, &hdr)
		for j := range entries {
			out = sirius.WriteEntry_t(out, &entries[j])
		}
	}
}

// ---- E13: record-sharded parallel parsing (internal/parallel) ----
//
// The vetting task of E10 sharded across worker goroutines; workers=1 is
// the parallel engine's overhead floor against BenchmarkFig10_PadsVet.
// Speedup expectations only hold on multi-core machines — see the E13
// entry in EXPERIMENTS.md for measured curves.

func BenchmarkParallel_Sirius(b *testing.B) {
	benchCorpus(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(siriusData)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fig10.PadsVetParallel(siriusData, io.Discard, io.Discard, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- A4: mask partial evaluation (§9 application-specific customization:
// the parser specialized at compile time to Set — "all error checking
// off" — vs the same mask applied at run time) ----

func BenchmarkAblation_Specialized_RuntimeSetMask(b *testing.B) {
	benchMask(b, sirius.NewEntry_tMask(padsrt.Set))
}

func BenchmarkAblation_Specialized_CompiledSetMask(b *testing.B) {
	benchCorpus(b)
	b.SetBytes(int64(len(siriusClean)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := padsrt.NewBytesSource(siriusClean)
		var hdr siriusset.Summary_header_t
		var hdrPD siriusset.Summary_header_tPD
		siriusset.ReadSummary_header_t(s, nil, &hdrPD, &hdr)
		var e siriusset.Entry_t
		var epd siriusset.Entry_tPD
		for s.More() {
			siriusset.ReadEntry_t(s, nil, &epd, &e)
		}
	}
}
