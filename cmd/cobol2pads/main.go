// Command cobol2pads translates a Cobol copybook into a PADS description —
// the section 5.2 tool built for AT&T's Altair project so its ~4000 daily
// Cobol files could be profiled automatically.
//
// Usage:
//
//	cobol2pads billing.cpy > billing.pads
package main

import (
	"fmt"
	"os"

	"pads/internal/cliutil"
	"pads/internal/cobol"
	"pads/internal/dsl"
	"pads/internal/sema"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: cobol2pads copybook.cpy")
		os.Exit(2)
	}
	src, err := os.ReadFile(os.Args[1])
	if err != nil {
		cliutil.Fatal(err)
	}
	prog, err := cobol.Translate(string(src))
	if err != nil {
		cliutil.Fatal(err)
	}
	// Sanity: the translation must check.
	if _, errs := sema.Check(prog); len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "cobol2pads: internal error: translation does not check: %v\n", errs[0])
		os.Exit(1)
	}
	fmt.Print(dsl.Print(prog))
}
