// Command padsgen generates synthetic data: either random data conforming
// to any PADS description (the section 9 tool, useful when the real data is
// proprietary), or the calibrated CLF / Sirius corpora used to reproduce the
// paper's experiments, complete with their documented error populations.
//
// Usage:
//
//	padsgen -desc mytype.pads -n 100 -seed 7 > data        # description-driven
//	padsgen -corpus sirius -n 1000000 > sirius.txt         # section 7 data
//	padsgen -corpus clf -n 57368 > weblog.txt              # section 5.2 data
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pads/internal/cliutil"
	"pads/internal/datagen"
)

func main() {
	descPath := flag.String("desc", "", "generate from this PADS description")
	corpus := flag.String("corpus", "", "generate a calibrated corpus: clf or sirius")
	n := flag.Int("n", 1000, "records (corpus mode) or instances (description mode)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer out.Flush()

	switch {
	case *corpus == "clf":
		cfg := datagen.DefaultCLF(*n)
		cfg.Seed = *seed
		st, err := datagen.CLF(out, cfg)
		if err != nil {
			cliutil.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "clf: %d records, %d bad lengths, %d bytes\n", st.Records, st.BadLengths, st.Bytes)
	case *corpus == "sirius":
		cfg := datagen.DefaultSirius(*n)
		cfg.Seed = *seed
		st, err := datagen.Sirius(out, cfg)
		if err != nil {
			cliutil.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sirius: %d records, %d sort violations, %d syntax errors, events %d..%d (mean %.2f), %d bytes\n",
			st.Records, st.SortViolations, st.SyntaxErrors, st.MinEvents, st.MaxEvents,
			float64(st.Events)/float64(st.Records), st.Bytes)
	case *descPath != "":
		desc := cliutil.MustCompile(*descPath)
		g := desc.NewGenerator(*seed)
		for i := 0; i < *n; i++ {
			data, err := g.GenerateSource()
			if err != nil {
				cliutil.Fatal(err)
			}
			out.Write(data)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: padsgen (-desc description.pads | -corpus clf|sirius) [-n N] [-seed S]")
		os.Exit(2)
	}
}
