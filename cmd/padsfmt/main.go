// Command padsfmt is the generated formatting program of section 5.3.1: it
// converts ad hoc data into delimited text suitable for loading into a
// spreadsheet or relational database (Figure 8 of the paper).
//
// Usage:
//
//	padsfmt -desc weblog.pads -delims "|" -datefmt "%D:%T" data.log
//	padsfmt -desc weblog.pads -out-of-core -out big.psv big.log
//	padsfmt -desc weblog.pads -resume big.log.manifest
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"pads/internal/cliutil"
	"pads/internal/fmtconv"
	"pads/internal/padsrt"
	"pads/internal/value"
)

func main() {
	descPath := flag.String("desc", "", "PADS description file (required)")
	delims := flag.String("delims", "|", "delimiter list, comma-separated for nested levels")
	dateFmt := flag.String("datefmt", "", "date output format, e.g. %D:%T (default: raw text)")
	disc := flag.String("disc", "newline", "record discipline: newline, none, fixed:N, lenprefix[:N]")
	ebcdic := flag.Bool("ebcdic", false, "treat the ambient coding as EBCDIC")
	le := flag.Bool("le", false, "little-endian binary integers")
	skipErrs := flag.Bool("skip-errors", false, "omit records with parse errors")
	outPath := flag.String("out", "", "write delimited output to `FILE` (required with -out-of-core: resume must be able to truncate it)")
	workers := flag.Int("workers", 0, "out-of-core parse workers (0 = all CPUs)")
	stats := cliutil.StatsFlag()
	profFlags := cliutil.NewProfFlags()
	robustFlags := cliutil.NewRobustFlags()
	segFlags := cliutil.NewSegmentFlags()
	flag.Parse()

	if *descPath == "" {
		fmt.Fprintln(os.Stderr, "usage: padsfmt -desc description.pads [flags] [data]")
		os.Exit(2)
	}
	desc := cliutil.MustCompile(*descPath)
	opts, err := cliutil.SourceOptions(*disc, *ebcdic, *le)
	if err != nil {
		cliutil.Fatal(err)
	}
	opts = robustFlags.SourceOptions(opts)
	tel, err := cliutil.OpenTelemetry(*stats, "", 0)
	if err != nil {
		cliutil.Fatal(err)
	}
	tel.Observe(desc)
	prf, err := cliutil.OpenProfiling(profFlags, cliutil.DataSize(flag.Arg(0)))
	if err != nil {
		cliutil.Fatal(err)
	}
	prf.Observe(desc)
	f := fmtconv.New(strings.Split(*delims, ",")...)
	f.DateFormat = *dateFmt

	if segFlags.Active() {
		// Out-of-core formatting: each segment's delimited text lands in
		// -out in segment order through the durable job manifest.
		if *outPath == "" && segFlags.Resume == "" {
			cliutil.Fatal(fmt.Errorf("-out-of-core needs -out FILE"))
		}
		skip := *skipErrs
		job := &cliutil.SegmentJob{
			Desc: desc, Flags: segFlags, Robust: robustFlags, Opts: opts,
			Workers: *workers, Stats: tel.Stats, Mode: "fmt", OutPath: *outPath,
			Emit: func(out *bytes.Buffer, v value.Value) {
				if skip && v.PD().Nerr > 0 {
					return
				}
				f.WriteRecord(out, v)
			},
			DataArg: flag.Arg(0),
		}
		rep, err := job.Run()
		if cerr := prf.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if cerr := tel.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			cliutil.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "padsfmt: %d records (%d errored) across %d segments\n", rep.Records, rep.Errored, rep.Segments)
		if cliutil.ReportPoisoned(rep) {
			os.Exit(3)
		}
		return
	}

	rob, err := robustFlags.Open(tel.Stats)
	if err != nil {
		cliutil.Fatal(err)
	}
	in, err := cliutil.OpenData(flag.Arg(0))
	if err != nil {
		cliutil.Fatal(err)
	}
	defer in.Close()

	s := padsrt.NewSource(bufio.NewReaderSize(in, 1<<20), prf.SourceOptions(tel.SourceOptions(opts))...)
	rr, err := desc.Records(s, nil)
	if err != nil {
		cliutil.Fatal(err)
	}
	rr.SetPolicy(rob.Policy)
	var sink *os.File = os.Stdout
	if *outPath != "" {
		sink, err = os.Create(*outPath)
		if err != nil {
			cliutil.Fatal(err)
		}
		defer sink.Close()
	}
	out := bufio.NewWriterSize(sink, 1<<20)
	for rr.More() {
		rec := rr.Read()
		if *skipErrs && rec.PD().Nerr > 0 {
			continue
		}
		f.WriteRecord(out, rec)
	}
	scanErr := rr.Err()
	if err := out.Flush(); err != nil && scanErr == nil {
		scanErr = err
	}
	if err := rob.Close(); err != nil && scanErr == nil {
		scanErr = err
	}
	if err := prf.Close(); err != nil && scanErr == nil {
		scanErr = err
	}
	if err := tel.Close(); err != nil && scanErr == nil {
		scanErr = err
	}
	if scanErr != nil {
		cliutil.Fatal(scanErr)
	}
}
