// Command padsbench regenerates the paper's performance evaluation
// (section 7, Figure 10): it synthesizes a Sirius file with the documented
// error population, then times three implementations of the vetting and
// selection tasks plus the record-counting baseline:
//
//   - pads:    the compiled (generated Go) PADS parser
//   - perl:    the actual Perl programs of section 7 (scripts/perl/*.pl,
//     including the Figure 9 regular expression verbatim), when a
//     perl interpreter is on PATH — the paper's own comparison
//   - go-perl: Go ports of the Perl algorithms (a compiled-baseline
//     ablation the paper could not run)
//
// The paper's numbers (SGI Origin 2000, 11.77M records, 2.2GB, Perl 5.6.1):
//
//	padsvet  ~1616s   perl vet    ~3272s   (PADS 2.03x faster)
//	padsselect ~421s  perl select  ~520s   (PADS 1.23x faster)
//	count: PADS 81s   perl 124s            (PADS 1.53x faster)
//
// Usage:
//
//	padsbench [-n 2000000] [-runs 3] [-state LOC_0] [-noperl] [-workers 4]
//	padsbench -json > BENCH.json   # machine-readable rows (scripts/bench.sh)
//	padsbench -leverage        # the section 4 description-expansion ratio
//
// With -json the human-readable progress goes to stderr and stdout carries
// one pads-bench/v1 report (internal/telemetry.BenchReport): per-program
// timing rows with bytes/sec, allocs per run, and — for the pads rows — the
// runtime telemetry counters of one instrumented pass, so BENCH_*.json
// trajectory files track counter regressions alongside wall time.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pads/internal/baseline"
	"pads/internal/cliutil"
	"pads/internal/codegen"
	"pads/internal/core"
	"pads/internal/datagen"
	"pads/internal/fig10"
	"pads/internal/padsrt"
	"pads/internal/telemetry"
	"pads/internal/telemetry/prof"
)

func main() {
	n := flag.Int("n", 2_000_000, "Sirius records to generate (the paper used 11,773,843)")
	runs := flag.Int("runs", 3, "timed runs per program (the paper reports 3)")
	state := flag.String("state", datagen.StateName(0), "state for the selection task")
	noPerl := flag.Bool("noperl", false, "skip the real-Perl runs even if perl is installed")
	leverage := flag.Bool("leverage", false, "print the section 4 leverage ratio and exit")
	keep := flag.String("keep", "", "also keep the generated data at this path")
	workers := flag.Int("workers", 0, "if > 1, also time the record-sharded parallel programs with this many workers")
	profile := flag.Bool("profile", false, "also run one interpreter pass with the parse-path profiler and report the per-node hot list")
	jsonOut := cliutil.JSONFlag()
	flag.Parse()

	if *leverage {
		printLeverage()
		return
	}

	// With -json, stdout is reserved for the report; narration moves to
	// stderr so `padsbench -json > BENCH.json` stays clean.
	out := io.Writer(os.Stdout)
	var report *telemetry.BenchReport
	if *jsonOut {
		out = os.Stderr
		report = &telemetry.BenchReport{
			Schema:     telemetry.BenchSchema,
			Date:       time.Now().Format("2006-01-02"),
			Go:         runtime.Version(),
			Commit:     gitCommit(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Records:    *n,
			Workers:    *workers,
		}
		report.Host, _ = os.Hostname()
	}

	perlPath := ""
	if !*noPerl {
		if p, err := exec.LookPath("perl"); err == nil {
			perlPath = p
		}
	}

	fmt.Fprintf(out, "Figure 10 reproduction: %d synthetic Sirius records, %d runs each\n", *n, *runs)
	tmpDir, err := os.MkdirTemp("", "padsbench")
	if err != nil {
		cliutil.Fatal(err)
	}
	defer os.RemoveAll(tmpDir)

	rawPath := filepath.Join(tmpDir, "sirius.raw")
	rawFile, err := os.Create(rawPath)
	if err != nil {
		cliutil.Fatal(err)
	}
	cfg := datagen.DefaultSirius(*n)
	st, err := datagen.Sirius(rawFile, cfg)
	if err != nil {
		cliutil.Fatal(err)
	}
	rawFile.Close()
	fmt.Fprintf(out, "data: %d bytes, %d sort violations, %d syntax errors, events %d..%d mean %.2f\n",
		st.Bytes, st.SortViolations, st.SyntaxErrors, st.MinEvents, st.MaxEvents,
		float64(st.Events)/float64(st.Records))
	if report != nil {
		report.Bytes = st.Bytes
	}
	if perlPath != "" {
		fmt.Fprintf(out, "perl: %s (scripts/perl)\n", perlPath)
	} else {
		fmt.Fprintln(out, "perl: not run")
	}
	fmt.Fprintln(out)
	if *keep != "" {
		data, _ := os.ReadFile(rawPath)
		os.WriteFile(*keep, data, 0o644)
	}

	// The selection programs read the cleaned file the vetters produce,
	// as in the paper.
	cleanPath := filepath.Join(tmpDir, "sirius.clean")
	cleanFile, err := os.Create(cleanPath)
	if err != nil {
		cliutil.Fatal(err)
	}
	raw := mustOpen(rawPath)
	if _, err := fig10.PadsVet(raw, cleanFile, io.Discard); err != nil {
		cliutil.Fatal(err)
	}
	raw.Close()
	cleanFile.Close()

	// The parallel programs (docs/PARALLEL.md) shard in-memory input, so
	// load the corpora once when they are in play.
	var rawData, cleanData []byte
	if *workers > 1 {
		if rawData, err = os.ReadFile(rawPath); err != nil {
			cliutil.Fatal(err)
		}
		if cleanData, err = os.ReadFile(cleanPath); err != nil {
			cliutil.Fatal(err)
		}
	}

	type prog struct {
		name string
		run  func() error
		// subproc marks rows timed through exec (perl): heap deltas in this
		// process would be noise, so they are skipped.
		subproc bool
		// instrument, set on pads rows, reruns the program once with a
		// telemetry sink attached so the -json report carries the runtime
		// counters alongside the timings (the extra pass is not timed).
		instrument func(*telemetry.Stats) error
	}
	bench := func(task string, note string, taskBytes int64, progs []prog) {
		fmt.Fprintf(out, "-- %s (%s)\n", task, note)
		times := make([]float64, len(progs))
		secs := make([][]float64, len(progs))
		allocs := make([]uint64, len(progs))
		allocBytes := make([]uint64, len(progs))
		fmt.Fprintf(out, "%-10s", "run")
		for _, p := range progs {
			fmt.Fprintf(out, " %12s", p.name)
		}
		fmt.Fprintln(out)
		var ms0, ms1 runtime.MemStats
		for r := 0; r < *runs; r++ {
			fmt.Fprintf(out, "%-10d", r+1)
			for i, p := range progs {
				runtime.ReadMemStats(&ms0)
				start := time.Now()
				if err := p.run(); err != nil {
					cliutil.Fatal(fmt.Errorf("%s: %w", p.name, err))
				}
				el := time.Since(start).Seconds()
				runtime.ReadMemStats(&ms1)
				times[i] += el
				secs[i] = append(secs[i], el)
				allocs[i] += ms1.Mallocs - ms0.Mallocs
				allocBytes[i] += ms1.TotalAlloc - ms0.TotalAlloc
				fmt.Fprintf(out, " %12.2f", el)
			}
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "%-10s", "ratio")
		for i := range progs {
			fmt.Fprintf(out, " %12.2f", times[i]/times[0])
		}
		fmt.Fprintln(out, "   (relative to pads; >1 means pads is faster)")
		fmt.Fprintln(out)
		if report == nil {
			return
		}
		for i, p := range progs {
			row := telemetry.BenchRow{Task: task, Prog: p.name, Secs: secs[i]}
			if !p.subproc && *runs > 0 {
				row.AllocsPerRun = allocs[i] / uint64(*runs)
				row.AllocBytesPerRun = allocBytes[i] / uint64(*runs)
			}
			if p.instrument != nil {
				st := telemetry.NewStats()
				if err := p.instrument(st); err != nil {
					cliutil.Fatal(fmt.Errorf("%s (instrumented): %w", p.name, err))
				}
				row.Counters = st
			}
			telemetry.FinishRow(&row, taskBytes)
			report.Rows = append(report.Rows, row)
		}
	}

	// statSource builds the instrumented Source an instrument pass reads.
	statSource := func(path string, st *telemetry.Stats) (*os.File, *padsrt.Source) {
		f := mustOpen(path)
		return f, padsrt.NewSource(bufio.NewReaderSize(f, 1<<20), padsrt.WithStats(st))
	}

	cleanInfo, err := os.Stat(cleanPath)
	if err != nil {
		cliutil.Fatal(err)
	}
	cleanBytes := cleanInfo.Size()

	vetProgs := []prog{
		{name: "pads", run: func() error {
			r := mustOpen(rawPath)
			defer r.Close()
			_, err := fig10.PadsVet(r, io.Discard, io.Discard)
			return err
		}, instrument: func(st *telemetry.Stats) error {
			f, s := statSource(rawPath, st)
			defer f.Close()
			_, err := fig10.PadsVetSource(s, io.Discard, io.Discard)
			return err
		}},
	}
	if perlPath != "" {
		vetProgs = append(vetProgs, prog{name: "perl", subproc: true, run: func() error {
			return runPerl(perlPath, rawPath, "scripts/perl/vet.pl")
		}})
	}
	vetProgs = append(vetProgs, prog{name: "go-port", run: func() error {
		r := mustOpen(rawPath)
		defer r.Close()
		_, err := baseline.SiriusVet(r, io.Discard, io.Discard)
		return err
	}})
	if *workers > 1 {
		vetProgs = append(vetProgs, prog{name: fmt.Sprintf("pads-par%d", *workers), run: func() error {
			_, err := fig10.PadsVetParallel(rawData, io.Discard, io.Discard, *workers)
			return err
		}})
	}
	bench("vetting", "paper: padsvet 1616s vs perl 3272s, 2.03x", st.Bytes, vetProgs)

	selProgs := []prog{
		{name: "pads", run: func() error {
			r := mustOpen(cleanPath)
			defer r.Close()
			_, err := fig10.PadsSelect(r, io.Discard, *state)
			return err
		}, instrument: func(st *telemetry.Stats) error {
			f, s := statSource(cleanPath, st)
			defer f.Close()
			_, err := fig10.PadsSelectSource(s, io.Discard, *state)
			return err
		}},
	}
	if perlPath != "" {
		selProgs = append(selProgs, prog{name: "perl", subproc: true, run: func() error {
			return runPerl(perlPath, cleanPath, "scripts/perl/select.pl", *state)
		}})
	}
	selProgs = append(selProgs, prog{name: "go-port", run: func() error {
		r := mustOpen(cleanPath)
		defer r.Close()
		_, err := baseline.SiriusSelect(r, io.Discard, *state)
		return err
	}})
	if *workers > 1 {
		selProgs = append(selProgs, prog{name: fmt.Sprintf("pads-par%d", *workers), run: func() error {
			_, err := fig10.PadsSelectParallel(cleanData, io.Discard, *state, *workers)
			return err
		}})
	}
	bench("selection", "paper: padsselect 421s vs perl 520s, 1.23x", cleanBytes, selProgs)

	countProgs := []prog{
		{name: "pads", run: func() error {
			r := mustOpen(cleanPath)
			defer r.Close()
			_, err := fig10.PadsCount(r)
			return err
		}, instrument: func(st *telemetry.Stats) error {
			f, s := statSource(cleanPath, st)
			defer f.Close()
			_, err := fig10.PadsCountSource(s)
			return err
		}},
	}
	if perlPath != "" {
		countProgs = append(countProgs, prog{name: "perl", subproc: true, run: func() error {
			return runPerl(perlPath, cleanPath, "scripts/perl/count.pl")
		}})
	}
	countProgs = append(countProgs, prog{name: "go-port", run: func() error {
		r := mustOpen(cleanPath)
		defer r.Close()
		_, err := baseline.CountRecords(r)
		return err
	}})
	if *workers > 1 {
		countProgs = append(countProgs, prog{name: fmt.Sprintf("pads-par%d", *workers), run: func() error {
			_, err := fig10.PadsCountParallel(cleanData, *workers)
			return err
		}})
	}
	bench("record count", "paper: PADS 81s vs perl 124s, 1.53x", cleanBytes, countProgs)

	// The Figure 10 rows time the generated parser, which has no node-level
	// instrumentation; the hot list comes from one untimed interpreter pass
	// over the cleaned corpus with the parse-path profiler attached
	// (docs/OBSERVABILITY.md), so the report shows where the description
	// itself spends its time.
	if *profile || report != nil {
		pr, err := interpProfile(cleanPath)
		if err != nil {
			cliutil.Fatal(fmt.Errorf("profile pass: %w", err))
		}
		if report != nil {
			report.HotNodes = pr.HotNodes(10)
		}
		if *profile {
			fmt.Fprintln(out, "-- parse profile (interpreter pass over the cleaned corpus) --")
			pr.WriteTable(out)
			fmt.Fprintln(out)
		}
	}

	if report != nil {
		if err := report.WriteJSON(os.Stdout); err != nil {
			cliutil.Fatal(err)
		}
	}
}

// interpProfile reads the cleaned corpus once through the interpreter with
// every record sampled, and returns the per-node profile.
func interpProfile(cleanPath string) (*prof.Profile, error) {
	desc, err := core.CompileFile("testdata/sirius.pads")
	if err != nil {
		return nil, err
	}
	p := prof.New(prof.Options{})
	desc.ObserveProf(p)
	f, err := os.Open(cleanPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s := padsrt.NewSource(bufio.NewReaderSize(f, 1<<20), padsrt.WithProf(p))
	rr, err := desc.Records(s, nil)
	if err != nil {
		return nil, err
	}
	for rr.More() {
		rr.Read()
	}
	if err := rr.Err(); err != nil {
		return nil, err
	}
	return p.Snapshot(), nil
}

// gitCommit stamps the report with the working tree's short commit hash;
// best effort — a build outside a git checkout just leaves the field empty.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func mustOpen(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		cliutil.Fatal(err)
	}
	return f
}

func runPerl(perl, dataPath, script string, args ...string) error {
	f := mustOpen(dataPath)
	defer f.Close()
	cmd := exec.Command(perl, append([]string{script}, args...)...)
	cmd.Stdin = f
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	return cmd.Run()
}

func printLeverage() {
	src, err := os.ReadFile("testdata/sirius.pads")
	if err != nil {
		cliutil.Fatal(err)
	}
	desc := cliutil.MustCompile("testdata/sirius.pads")
	code, err := codegen.Generate(desc.Desc, codegen.Options{Package: "sirius", Source: "sirius.pads"})
	if err != nil {
		cliutil.Fatal(err)
	}
	dl := strings.Count(string(src), "\n")
	gl := strings.Count(code, "\n")
	fmt.Printf("E4 leverage ratio (section 4):\n")
	fmt.Printf("  description: %d lines\n  generated Go: %d lines\n  ratio: %.1fx\n", dl, gl, float64(gl)/float64(dl))
	fmt.Printf("  paper: 68 lines -> 1432 (.h) + 6471 (.c) = 7903 lines, 116x\n")
	fmt.Printf("  (the Go backend needs no headers and shares its tools via the value bridge)\n")
}
