// Command padsbench regenerates the paper's performance evaluation
// (section 7, Figure 10): it synthesizes a Sirius file with the documented
// error population, then times three implementations of the vetting and
// selection tasks plus the record-counting baseline:
//
//   - pads:    the compiled (generated Go) PADS parser
//   - perl:    the actual Perl programs of section 7 (scripts/perl/*.pl,
//     including the Figure 9 regular expression verbatim), when a
//     perl interpreter is on PATH — the paper's own comparison
//   - go-perl: Go ports of the Perl algorithms (a compiled-baseline
//     ablation the paper could not run)
//
// The paper's numbers (SGI Origin 2000, 11.77M records, 2.2GB, Perl 5.6.1):
//
//	padsvet  ~1616s   perl vet    ~3272s   (PADS 2.03x faster)
//	padsselect ~421s  perl select  ~520s   (PADS 1.23x faster)
//	count: PADS 81s   perl 124s            (PADS 1.53x faster)
//
// Usage:
//
//	padsbench [-n 2000000] [-runs 3] [-state LOC_0] [-noperl] [-workers 4]
//	padsbench -leverage        # the section 4 description-expansion ratio
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"pads/internal/baseline"
	"pads/internal/cliutil"
	"pads/internal/codegen"
	"pads/internal/datagen"
	"pads/internal/fig10"
)

func main() {
	n := flag.Int("n", 2_000_000, "Sirius records to generate (the paper used 11,773,843)")
	runs := flag.Int("runs", 3, "timed runs per program (the paper reports 3)")
	state := flag.String("state", datagen.StateName(0), "state for the selection task")
	noPerl := flag.Bool("noperl", false, "skip the real-Perl runs even if perl is installed")
	leverage := flag.Bool("leverage", false, "print the section 4 leverage ratio and exit")
	keep := flag.String("keep", "", "also keep the generated data at this path")
	workers := flag.Int("workers", 0, "if > 1, also time the record-sharded parallel programs with this many workers")
	flag.Parse()

	if *leverage {
		printLeverage()
		return
	}

	perlPath := ""
	if !*noPerl {
		if p, err := exec.LookPath("perl"); err == nil {
			perlPath = p
		}
	}

	fmt.Printf("Figure 10 reproduction: %d synthetic Sirius records, %d runs each\n", *n, *runs)
	tmpDir, err := os.MkdirTemp("", "padsbench")
	if err != nil {
		cliutil.Fatal(err)
	}
	defer os.RemoveAll(tmpDir)

	rawPath := filepath.Join(tmpDir, "sirius.raw")
	rawFile, err := os.Create(rawPath)
	if err != nil {
		cliutil.Fatal(err)
	}
	cfg := datagen.DefaultSirius(*n)
	st, err := datagen.Sirius(rawFile, cfg)
	if err != nil {
		cliutil.Fatal(err)
	}
	rawFile.Close()
	fmt.Printf("data: %d bytes, %d sort violations, %d syntax errors, events %d..%d mean %.2f\n",
		st.Bytes, st.SortViolations, st.SyntaxErrors, st.MinEvents, st.MaxEvents,
		float64(st.Events)/float64(st.Records))
	if perlPath != "" {
		fmt.Printf("perl: %s (scripts/perl)\n", perlPath)
	} else {
		fmt.Println("perl: not run")
	}
	fmt.Println()
	if *keep != "" {
		data, _ := os.ReadFile(rawPath)
		os.WriteFile(*keep, data, 0o644)
	}

	// The selection programs read the cleaned file the vetters produce,
	// as in the paper.
	cleanPath := filepath.Join(tmpDir, "sirius.clean")
	cleanFile, err := os.Create(cleanPath)
	if err != nil {
		cliutil.Fatal(err)
	}
	raw := mustOpen(rawPath)
	if _, err := fig10.PadsVet(raw, cleanFile, io.Discard); err != nil {
		cliutil.Fatal(err)
	}
	raw.Close()
	cleanFile.Close()

	// The parallel programs (docs/PARALLEL.md) shard in-memory input, so
	// load the corpora once when they are in play.
	var rawData, cleanData []byte
	if *workers > 1 {
		if rawData, err = os.ReadFile(rawPath); err != nil {
			cliutil.Fatal(err)
		}
		if cleanData, err = os.ReadFile(cleanPath); err != nil {
			cliutil.Fatal(err)
		}
	}

	type prog struct {
		name string
		run  func() error
	}
	bench := func(task string, note string, progs []prog) {
		fmt.Printf("-- %s (%s)\n", task, note)
		times := make([]float64, len(progs))
		fmt.Printf("%-10s", "run")
		for _, p := range progs {
			fmt.Printf(" %12s", p.name)
		}
		fmt.Println()
		for r := 0; r < *runs; r++ {
			fmt.Printf("%-10d", r+1)
			for i, p := range progs {
				start := time.Now()
				if err := p.run(); err != nil {
					cliutil.Fatal(fmt.Errorf("%s: %w", p.name, err))
				}
				el := time.Since(start).Seconds()
				times[i] += el
				fmt.Printf(" %12.2f", el)
			}
			fmt.Println()
		}
		fmt.Printf("%-10s", "ratio")
		for i := range progs {
			fmt.Printf(" %12.2f", times[i]/times[0])
		}
		fmt.Println("   (relative to pads; >1 means pads is faster)")
		fmt.Println()
	}

	vetProgs := []prog{
		{"pads", func() error {
			r := mustOpen(rawPath)
			defer r.Close()
			_, err := fig10.PadsVet(r, io.Discard, io.Discard)
			return err
		}},
	}
	if perlPath != "" {
		vetProgs = append(vetProgs, prog{"perl", func() error {
			return runPerl(perlPath, rawPath, "scripts/perl/vet.pl")
		}})
	}
	vetProgs = append(vetProgs, prog{"go-port", func() error {
		r := mustOpen(rawPath)
		defer r.Close()
		_, err := baseline.SiriusVet(r, io.Discard, io.Discard)
		return err
	}})
	if *workers > 1 {
		vetProgs = append(vetProgs, prog{fmt.Sprintf("pads-par%d", *workers), func() error {
			_, err := fig10.PadsVetParallel(rawData, io.Discard, io.Discard, *workers)
			return err
		}})
	}
	bench("vetting", "paper: padsvet 1616s vs perl 3272s, 2.03x", vetProgs)

	selProgs := []prog{
		{"pads", func() error {
			r := mustOpen(cleanPath)
			defer r.Close()
			_, err := fig10.PadsSelect(r, io.Discard, *state)
			return err
		}},
	}
	if perlPath != "" {
		selProgs = append(selProgs, prog{"perl", func() error {
			return runPerl(perlPath, cleanPath, "scripts/perl/select.pl", *state)
		}})
	}
	selProgs = append(selProgs, prog{"go-port", func() error {
		r := mustOpen(cleanPath)
		defer r.Close()
		_, err := baseline.SiriusSelect(r, io.Discard, *state)
		return err
	}})
	if *workers > 1 {
		selProgs = append(selProgs, prog{fmt.Sprintf("pads-par%d", *workers), func() error {
			_, err := fig10.PadsSelectParallel(cleanData, io.Discard, *state, *workers)
			return err
		}})
	}
	bench("selection", "paper: padsselect 421s vs perl 520s, 1.23x", selProgs)

	countProgs := []prog{
		{"pads", func() error {
			r := mustOpen(cleanPath)
			defer r.Close()
			_, err := fig10.PadsCount(r)
			return err
		}},
	}
	if perlPath != "" {
		countProgs = append(countProgs, prog{"perl", func() error {
			return runPerl(perlPath, cleanPath, "scripts/perl/count.pl")
		}})
	}
	countProgs = append(countProgs, prog{"go-port", func() error {
		r := mustOpen(cleanPath)
		defer r.Close()
		_, err := baseline.CountRecords(r)
		return err
	}})
	if *workers > 1 {
		countProgs = append(countProgs, prog{fmt.Sprintf("pads-par%d", *workers), func() error {
			_, err := fig10.PadsCountParallel(cleanData, *workers)
			return err
		}})
	}
	bench("record count", "paper: PADS 81s vs perl 124s, 1.53x", countProgs)
}

func mustOpen(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		cliutil.Fatal(err)
	}
	return f
}

func runPerl(perl, dataPath, script string, args ...string) error {
	f := mustOpen(dataPath)
	defer f.Close()
	cmd := exec.Command(perl, append([]string{script}, args...)...)
	cmd.Stdin = f
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	return cmd.Run()
}

func printLeverage() {
	src, err := os.ReadFile("testdata/sirius.pads")
	if err != nil {
		cliutil.Fatal(err)
	}
	desc := cliutil.MustCompile("testdata/sirius.pads")
	code, err := codegen.Generate(desc.Desc, codegen.Options{Package: "sirius", Source: "sirius.pads"})
	if err != nil {
		cliutil.Fatal(err)
	}
	dl := strings.Count(string(src), "\n")
	gl := strings.Count(code, "\n")
	fmt.Printf("E4 leverage ratio (section 4):\n")
	fmt.Printf("  description: %d lines\n  generated Go: %d lines\n  ratio: %.1fx\n", dl, gl, float64(gl)/float64(dl))
	fmt.Printf("  paper: 68 lines -> 1432 (.h) + 6471 (.c) = 7903 lines, 116x\n")
	fmt.Printf("  (the Go backend needs no headers and shares its tools via the value bridge)\n")
}
