// Command padsquery runs XPath-subset queries over raw ad hoc data: the
// section 5.4 use case, with the query engine standing in for XQuery/Galax.
// Matching nodes print as XML fragments; aggregate queries print a number.
//
// Usage:
//
//	padsquery -desc sirius.pads -q '/es/elt[header/order_num = 9152]' data
//	padsquery -desc sirius.pads -q 'count(/es/elt)' data
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"pads/internal/cliutil"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/query"
	"pads/internal/value"
	"pads/internal/xmlgen"
)

func main() {
	descPath := flag.String("desc", "", "PADS description file (required)")
	q := flag.String("q", "", "query (required)")
	disc := flag.String("disc", "newline", "record discipline: newline, none, fixed:N, lenprefix[:N]")
	ebcdic := flag.Bool("ebcdic", false, "treat the ambient coding as EBCDIC")
	le := flag.Bool("le", false, "little-endian binary integers")
	workers := flag.Int("workers", 1, "parse worker goroutines: 1 parses sequentially, 0 uses all CPUs (docs/PARALLEL.md)")
	stats := cliutil.StatsFlag()
	profFlags := cliutil.NewProfFlags()
	robustFlags := cliutil.NewRobustFlags()
	flag.Parse()

	if *descPath == "" || *q == "" {
		fmt.Fprintln(os.Stderr, "usage: padsquery -desc description.pads -q query [data]")
		os.Exit(2)
	}
	desc := cliutil.MustCompile(*descPath)
	cq, err := query.Compile(*q)
	if err != nil {
		cliutil.Fatal(err)
	}
	opts, err := cliutil.SourceOptions(*disc, *ebcdic, *le)
	if err != nil {
		cliutil.Fatal(err)
	}
	opts = robustFlags.SourceOptions(opts)
	tel, err := cliutil.OpenTelemetry(*stats, "", 0)
	if err != nil {
		cliutil.Fatal(err)
	}
	tel.Observe(desc)
	prf, err := cliutil.OpenProfiling(profFlags, cliutil.DataSize(flag.Arg(0)))
	if err != nil {
		cliutil.Fatal(err)
	}
	prf.Observe(desc)
	rob, err := robustFlags.Open(tel.Stats)
	if err != nil {
		cliutil.Fatal(err)
	}
	rob.Apply(desc)
	in, err := cliutil.OpenData(flag.Arg(0))
	if err != nil {
		cliutil.Fatal(err)
	}
	defer in.Close()

	finish := func(fatal error) {
		if err := rob.Close(); err != nil && fatal == nil {
			fatal = err
		}
		if err := prf.Close(); err != nil && fatal == nil {
			fatal = err
		}
		if err := tel.Close(); err != nil && fatal == nil {
			fatal = err
		}
		if fatal != nil {
			cliutil.Fatal(fatal)
		}
	}

	data, err := io.ReadAll(bufio.NewReaderSize(in, 1<<20))
	if err != nil {
		finish(err)
	}

	var v value.Value
	if *workers != 1 {
		// Record-sharded parallel parse; sources that are not
		// header+records shaped fall back to the sequential parse. A
		// tripped error budget is final — re-parsing would trip it again.
		v, err = desc.ParseAllParallel(data, opts, *workers)
		var be *interp.BudgetError
		if err != nil && !errors.As(err, &be) {
			v, err = desc.ParseAllPolicy(padsrt.NewBytesSource(data, prf.SourceOptions(tel.SourceOptions(opts))...))
		}
	} else {
		v, err = desc.ParseAllPolicy(padsrt.NewBytesSource(data, prf.SourceOptions(tel.SourceOptions(opts))...))
	}
	if err != nil {
		finish(err)
	}
	finish(nil)
	nodes, agg, isAgg := cq.Eval(desc.QueryRoot(v))
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if isAgg {
		fmt.Fprintf(out, "%g\n", agg)
		return
	}
	for _, n := range nodes {
		if n.Val != nil {
			xmlgen.WriteXML(out, n.Val, n.Name, 0)
		} else {
			fmt.Fprintf(out, "<%s>%s</%s>\n", n.Name, n.Text(), n.Name)
		}
	}
	fmt.Fprintf(out, "<!-- %d nodes -->\n", len(nodes))
}
