// Command padsd is the PADS parse daemon: a long-running, multi-tenant HTTP
// service that compiles uploaded descriptions once and parses concurrent
// data streams against them with the full robustness discipline of
// docs/ROBUSTNESS.md — admission control before buffering, per-tenant rate
// limits and error budgets, deadline propagation into the parse loop,
// per-request panic containment, bounded dead-letter tails, and graceful
// drain on SIGTERM.
//
// Usage:
//
//	padsd -addr 127.0.0.1:8707
//	padsd -addr :8707 -max-concurrent 8 -rate 10 -burst 20 -max-errors 1000 \
//	      -timeout 30s -drain 10s -quarantine dead.jsonl
//	padsd -chaos   # honor X-Pads-Fault headers (staging/tests only)
//
// Endpoints (see docs/ROBUSTNESS.md for the degradation matrix):
//
//	POST /v1/descriptions[?name=N]      upload + compile (content-addressed)
//	GET  /v1/descriptions[/ID]          registry listing / metadata
//	POST /v1/parse/accum?desc=ID        accumulator report over the body
//	POST /v1/parse/xml?desc=ID          XML conversion (streaming)
//	POST /v1/parse/csv?desc=ID          delimited conversion (streaming)
//	GET  /v1/quarantine                 tenant's dead-letter tail (JSONL)
//	GET  /v1/tenants                    per-tenant counters
//	POST /v1/jobs                       out-of-core job over a file in -job-dir
//	GET  /v1/jobs[/ID[/result]]         job listing / status / result
//	DELETE /v1/jobs/ID                  cancel (manifest stays resumable)
//	GET  /metrics | /healthz | /readyz  operations surface
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pads/internal/cliutil"
	"pads/internal/padsd"
	"pads/internal/padsrt"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8707", "listen address")
	maxConc := flag.Int("max-concurrent", 0, "concurrent parse streams across all tenants (0 = 2*GOMAXPROCS)")
	maxBody := flag.Int64("max-body", 1<<30, "per-request body cap in bytes")
	maxDescs := flag.Int("max-descriptions", 256, "compiled description registry cap")
	rate := flag.Float64("rate", 0, "per-tenant parse requests per second (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-tenant burst size (0 = max(1, rate))")
	maxActive := flag.Int("tenant-max-active", 0, "per-tenant concurrent stream cap (0 = unlimited)")
	maxErrors := flag.Int("max-errors", 0, "per-request error budget: abort a parse after this many damaged records (0 = unlimited)")
	maxErrRate := flag.Float64("max-error-rate", 0, "per-request error-rate budget in [0,1] (0 = disabled)")
	failFast := flag.Bool("fail-fast", false, "abort each parse on its first damaged record")
	maxRecord := flag.Int("max-record-len", 1<<20, "per-record length cap in bytes")
	maxBacktracks := flag.Int("max-backtracks", 1<<20, "per-parse speculation retreat budget (0 = default)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request parse deadline")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "ceiling for client-requested deadlines")
	drain := flag.Duration("drain", 10*time.Second, "SIGTERM drain budget before in-flight parses are cancelled")
	quarPath := flag.String("quarantine", "", "append every dead-lettered record to this JSONL file (all tenants)")
	quarTail := flag.Int("quarantine-tail", 1024, "per-tenant in-memory dead-letter ring size")
	chaos := flag.Bool("chaos", false, "honor X-Pads-Fault fault-injection headers (staging/tests only)")
	jobDir := flag.String("job-dir", "", "enable the async out-of-core job API over files in this `DIR` (manifests and outputs land there)")
	maxJobs := flag.Int("max-jobs", 0, "concurrently running out-of-core jobs (0 = 2)")
	jobWorkers := flag.Int("job-workers", 0, "default per-job parse workers (0 = all CPUs)")
	jobSegSize := flag.String("job-segment-size", "", "default out-of-core segment buffer `SIZE` (suffixes k/m/g; default 8m)")
	jitterSeed := flag.Uint64("retry-jitter-seed", 0, "seed for the deterministic Retry-After jitter on 429/503 responses")
	flag.Parse()

	jobSeg, err := cliutil.ParseSize(*jobSegSize)
	if err != nil {
		cliutil.Fatal(fmt.Errorf("bad -job-segment-size: %w", err))
	}

	cfg := padsd.Config{
		MaxConcurrent:   *maxConc,
		MaxBodyBytes:    *maxBody,
		MaxDescriptions: *maxDescs,
		Limits: padsrt.Limits{
			MaxRecordLen:  *maxRecord,
			MaxBacktracks: *maxBacktracks,
		},
		ParseTimeout: *timeout,
		MaxTimeout:   *maxTimeout,
		Tenant: padsd.TenantConfig{
			RatePerSec:   *rate,
			Burst:        *burst,
			MaxActive:    *maxActive,
			MaxErrors:    *maxErrors,
			MaxErrorRate: *maxErrRate,
			FailFast:     *failFast,
		},
		QuarantineTail: *quarTail,
		Chaos:          *chaos,
		JobDir:         *jobDir,
		MaxJobs:        *maxJobs,
		JobWorkers:     *jobWorkers,
		JobSegmentSize: jobSeg,
		RetryAfterSeed: *jitterSeed,
	}
	var quarFile *os.File
	if *quarPath != "" {
		f, err := os.OpenFile(*quarPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			cliutil.Fatal(err)
		}
		quarFile = f
		cfg.Quarantine = f
	}

	srv := padsd.New(cfg)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "padsd: listening on %s (drain budget %s)\n", *addr, *drain)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		cliutil.Fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "padsd: %s: draining (budget %s)\n", sig, *drain)
	}

	// SIGTERM discipline: stop admitting (readyz flips 503 so load balancers
	// route away), give in-flight parses the drain budget, then cancel the
	// stragglers through the runtime's deadline hook. The listener shuts
	// down after the parses so their responses can still be written.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	derr := srv.Drain(ctx)
	hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil {
		hs.Close()
	}
	if quarFile != nil {
		// The daemon's quarantine is a lifetime append stream (atomic
		// replacement would hide entries until shutdown); fsync at drain so
		// everything dead-lettered in this run is durable before exit.
		if err := quarFile.Sync(); err != nil {
			fmt.Fprintf(os.Stderr, "padsd: syncing quarantine: %v\n", err)
		}
		if err := quarFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "padsd: closing quarantine: %v\n", err)
		}
	}
	if derr != nil && !errors.Is(derr, context.Canceled) {
		fmt.Fprintf(os.Stderr, "padsd: drain budget expired; in-flight parses cancelled\n")
		os.Exit(4)
	}
	fmt.Fprintln(os.Stderr, "padsd: drained cleanly")
}
