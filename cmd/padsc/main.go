// Command padsc is the PADS compiler: it checks a description and emits the
// generated Go library (parser, printer, verifier, masks, parse
// descriptors), the XML Schema of the canonical embedding, or the
// pretty-printed description.
//
// Usage:
//
//	padsc -go out.go -pkg clf description.pads     # generate the Go library
//	padsc -schema out.xsd description.pads         # generate the XML Schema
//	padsc -print description.pads                  # pretty-print (round trip)
//	padsc -check description.pads                  # check only
//	padsc -emit=ir description.pads                # dump the lowered IR
package main

import (
	"flag"
	"fmt"
	"os"

	"pads/internal/codegen"
	"pads/internal/dsl"
	"pads/internal/ir"
	"pads/internal/padsrt"
	"pads/internal/sema"
	"pads/internal/xmlgen"
)

func main() {
	goOut := flag.String("go", "", "write the generated Go library to this file")
	pkg := flag.String("pkg", "gen", "package name for generated Go code")
	maskSpec := flag.String("mask", "", "specialize the generated parser to a fixed mask: ignore, set, check, or checkandset (default: run-time masks)")
	schemaOut := flag.String("schema", "", "write the generated XML Schema to this file")
	printSrc := flag.Bool("print", false, "pretty-print the checked description to stdout")
	checkOnly := flag.Bool("check", false, "check the description and exit")
	emit := flag.String("emit", "", `dump an intermediate form to stdout: "ir" (the lowered bytecode program shared by the interpreter and the compiler backend, docs/IR.md)`)
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: padsc [-go out.go -pkg name] [-schema out.xsd] [-print] [-check] description.pads")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, perrs := dsl.Parse(string(src))
	for _, e := range perrs {
		fmt.Fprintf(os.Stderr, "%s:%v\n", path, e)
	}
	if len(perrs) > 0 {
		os.Exit(1)
	}
	desc, serrs := sema.Check(prog)
	for _, e := range serrs {
		fmt.Fprintf(os.Stderr, "%s:%v\n", path, e)
	}
	if len(serrs) > 0 {
		os.Exit(1)
	}
	if *checkOnly {
		fmt.Printf("%s: %d declarations, source type %s\n", path, len(prog.Decls), desc.Source.DeclName())
		return
	}
	if *printSrc {
		fmt.Print(dsl.Print(prog))
	}
	switch *emit {
	case "":
	case "ir":
		p, err := ir.Lower(desc)
		if err != nil {
			fatal(err)
		}
		p.Dump(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "padsc: unknown -emit form %q (want \"ir\")\n", *emit)
		os.Exit(2)
	}
	if *schemaOut != "" {
		if err := os.WriteFile(*schemaOut, []byte(xmlgen.Schema(desc)), 0o644); err != nil {
			fatal(err)
		}
	}
	if *goOut != "" {
		opts := codegen.Options{Package: *pkg, Source: path}
		switch *maskSpec {
		case "":
		case "ignore":
			m := padsrt.Ignore
			opts.Specialize = &m
		case "set":
			m := padsrt.Set
			opts.Specialize = &m
		case "check":
			m := padsrt.Check
			opts.Specialize = &m
		case "checkandset":
			m := padsrt.CheckAndSet
			opts.Specialize = &m
		default:
			fatal(fmt.Errorf("unknown -mask %q", *maskSpec))
		}
		code, err := codegen.Generate(desc, opts)
		if err != nil {
			if code != "" {
				os.WriteFile(*goOut, []byte(code), 0o644)
			}
			fatal(err)
		}
		if err := os.WriteFile(*goOut, []byte(code), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padsc:", err)
	os.Exit(1)
}
