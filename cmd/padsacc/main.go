// Command padsacc is the generated accumulator program of section 5.2: it
// parses a data source against its description and prints the statistical
// profile — good/bad counts, numeric ranges, and the top values of every
// component.
//
// Usage:
//
//	padsacc -desc weblog.pads [-field length] [-track 1000] [-top 10] [-workers 4] data.log
//	padsacc -desc weblog.pads -stats -trace trace.jsonl -trace-last 1000 data.log
//	padsacc -desc weblog.pads -profile -progress data.log
//	padsacc -desc weblog.pads -out-of-core -segment-size 8m -workers 4 huge.log
//	padsacc -desc weblog.pads -resume huge.log.manifest
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"pads/internal/accum"
	"pads/internal/cliutil"
	"pads/internal/padsrt"
)

func main() {
	descPath := flag.String("desc", "", "PADS description file (required)")
	field := flag.String("field", "", "report only this dotted component path (e.g. length or header.order_num)")
	track := flag.Int("track", 1000, "distinct values to track per component")
	top := flag.Int("top", 10, "values to print per component")
	disc := flag.String("disc", "newline", "record discipline: newline, none, fixed:N, lenprefix[:N]")
	ebcdic := flag.Bool("ebcdic", false, "treat the ambient coding as EBCDIC")
	le := flag.Bool("le", false, "little-endian binary integers")
	workers := flag.Int("workers", 1, "parse worker goroutines: 1 streams sequentially, 0 uses all CPUs (docs/PARALLEL.md)")
	stats := cliutil.StatsFlag()
	traceFlags := cliutil.NewTraceFlags()
	profFlags := cliutil.NewProfFlags()
	robustFlags := cliutil.NewRobustFlags()
	segFlags := cliutil.NewSegmentFlags()
	flag.Parse()

	if *descPath == "" {
		fmt.Fprintln(os.Stderr, "usage: padsacc -desc description.pads [flags] [data]")
		os.Exit(2)
	}
	desc := cliutil.MustCompile(*descPath)
	opts, err := cliutil.SourceOptions(*disc, *ebcdic, *le)
	if err != nil {
		cliutil.Fatal(err)
	}
	opts = robustFlags.SourceOptions(opts)
	tel, err := cliutil.OpenTelemetry(*stats, traceFlags.Path, traceFlags.Last)
	if err != nil {
		cliutil.Fatal(err)
	}
	tel.Observe(desc)
	prf, err := cliutil.OpenProfiling(profFlags, cliutil.DataSize(flag.Arg(0)))
	if err != nil {
		cliutil.Fatal(err)
	}
	prf.Observe(desc)

	if segFlags.Active() {
		// Out-of-core: segment-at-a-time parsing with a durable job manifest
		// (docs/ROBUSTNESS.md). The segment runner owns the quarantine file
		// and applies the error budget per segment, so the Robustness block
		// is bypassed; telemetry still folds in at each commit.
		job := &cliutil.SegmentJob{
			Desc: desc, Flags: segFlags, Robust: robustFlags, Opts: opts,
			Workers: *workers, Stats: tel.Stats,
			AccumCfg: accum.Config{MaxTracked: *track, TopN: *top},
			DataArg:  flag.Arg(0),
		}
		rep, err := job.Run()
		if cerr := prf.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if cerr := tel.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			cliutil.Fatal(err)
		}
		out := bufio.NewWriter(os.Stdout)
		fmt.Fprintf(out, "%d records\n\n", rep.Records)
		if *field != "" {
			if err := rep.Acc.ReportField(out, "<top>", *field); err != nil {
				out.Flush()
				cliutil.Fatal(err)
			}
		} else {
			rep.Acc.Report(out, "<top>")
		}
		out.Flush()
		if cliutil.ReportPoisoned(rep) {
			os.Exit(3)
		}
		return
	}

	rob, err := robustFlags.Open(tel.Stats)
	if err != nil {
		cliutil.Fatal(err)
	}
	rob.Apply(desc)
	in, err := cliutil.OpenData(flag.Arg(0))
	if err != nil {
		cliutil.Fatal(err)
	}
	defer in.Close()

	// finish closes the quarantine, profiler, and telemetry before any exit,
	// so the -stats block, the -profile table, and the dead-letter file are
	// complete even on failure. The profiler closes first: its progress
	// ticker must stop before the reports print.
	finish := func(fatal error) {
		if err := rob.Close(); err != nil && fatal == nil {
			fatal = err
		}
		if err := prf.Close(); err != nil && fatal == nil {
			fatal = err
		}
		if err := tel.Close(); err != nil && fatal == nil {
			fatal = err
		}
		if fatal != nil {
			cliutil.Fatal(fatal)
		}
	}

	cfg := accum.Config{MaxTracked: *track, TopN: *top}
	var acc *accum.Accum
	var n int
	if *workers != 1 {
		// Record-sharded parallel accumulation over the whole input in
		// memory; the chunk-ordered merge keeps the exact statistics
		// identical to a sequential run (docs/PARALLEL.md).
		data, err := io.ReadAll(bufio.NewReaderSize(in, 1<<20))
		if err != nil {
			finish(err)
		}
		acc, n, err = desc.AccumulateParallel(data, opts, cfg, *workers)
		if err != nil {
			finish(err)
		}
	} else {
		s := padsrt.NewSource(bufio.NewReaderSize(in, 1<<20), prf.SourceOptions(tel.SourceOptions(opts))...)
		rr, err := desc.Records(s, nil)
		if err != nil {
			finish(err)
		}
		rr.SetPolicy(rob.Policy)
		acc = accum.New(cfg)
		for rr.More() {
			acc.Add(rr.Read())
			n++
		}
		if err := rr.Err(); err != nil {
			finish(err)
		}
	}
	finish(nil)

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintf(out, "%d records\n\n", n)
	if *field != "" {
		if err := acc.ReportField(out, "<top>", *field); err != nil {
			cliutil.Fatal(err)
		}
		return
	}
	acc.Report(out, "<top>")
}
