// Command padsxml is the generated XML conversion program of section 5.3.2:
// it converts ad hoc data into the canonical XML embedding, including parse
// descriptors for the buggy portions, and can emit the XML Schema the
// output conforms to.
//
// Usage:
//
//	padsxml -desc sirius.pads data.txt          # data -> XML on stdout
//	padsxml -desc sirius.pads -schema           # print the XML Schema
//	padsxml -desc sirius.pads -out-of-core -out big.xml big.txt
//	padsxml -desc sirius.pads -resume big.txt.manifest
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"

	"pads/internal/cliutil"
	"pads/internal/padsrt"
	"pads/internal/value"
	"pads/internal/xmlgen"
)

func main() {
	descPath := flag.String("desc", "", "PADS description file (required)")
	schema := flag.Bool("schema", false, "print the generated XML Schema instead of converting data")
	rootTag := flag.String("root", "source", "root element name")
	disc := flag.String("disc", "newline", "record discipline: newline, none, fixed:N, lenprefix[:N]")
	ebcdic := flag.Bool("ebcdic", false, "treat the ambient coding as EBCDIC")
	le := flag.Bool("le", false, "little-endian binary integers")
	outPath := flag.String("out", "", "write XML to `FILE` (required with -out-of-core: resume must be able to truncate it)")
	workers := flag.Int("workers", 0, "out-of-core parse workers (0 = all CPUs)")
	robustFlags := cliutil.NewRobustFlags()
	segFlags := cliutil.NewSegmentFlags()
	flag.Parse()

	if *descPath == "" {
		fmt.Fprintln(os.Stderr, "usage: padsxml -desc description.pads [-schema] [data]")
		os.Exit(2)
	}
	desc := cliutil.MustCompile(*descPath)
	if *schema {
		fmt.Print(desc.Schema())
		return
	}
	opts, err := cliutil.SourceOptions(*disc, *ebcdic, *le)
	if err != nil {
		cliutil.Fatal(err)
	}
	opts = robustFlags.SourceOptions(opts)

	if segFlags.Active() {
		// Out-of-core conversion streams each segment's XML to -out in
		// segment order through the durable job manifest; -out is required
		// because resume truncates the file back to the committed frontier,
		// which a pipe cannot do.
		shape, err := desc.Interp.Shape()
		if err != nil {
			cliutil.Fatal(err)
		}
		root := *rootTag
		job := &cliutil.SegmentJob{
			Desc: desc, Flags: segFlags, Robust: robustFlags, Opts: opts,
			Workers: *workers, Mode: "xml", OutPath: *outPath,
			EmitPrologue: func(out *bytes.Buffer, header value.Value) {
				fmt.Fprintf(out, "<%s>\n", root)
				if header != nil {
					xmlgen.WriteXML(out, header, "header", 1)
				}
			},
			Emit: func(out *bytes.Buffer, v value.Value) {
				xmlgen.WriteXML(out, v, shape.RecordType, 1)
			},
			EmitEpilogue: func(out *bytes.Buffer) {
				fmt.Fprintf(out, "</%s>\n", root)
			},
			DataArg: flag.Arg(0),
		}
		if *outPath == "" && segFlags.Resume == "" {
			cliutil.Fatal(fmt.Errorf("-out-of-core needs -out FILE"))
		}
		rep, err := job.Run()
		if err != nil {
			cliutil.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "padsxml: %d records (%d errored) across %d segments\n", rep.Records, rep.Errored, rep.Segments)
		if cliutil.ReportPoisoned(rep) {
			os.Exit(3)
		}
		return
	}

	rob, err := robustFlags.Open(nil)
	if err != nil {
		cliutil.Fatal(err)
	}
	in, err := cliutil.OpenData(flag.Arg(0))
	if err != nil {
		cliutil.Fatal(err)
	}
	defer in.Close()

	s := padsrt.NewSource(bufio.NewReaderSize(in, 1<<20), opts...)
	rr, err := desc.Records(s, nil)
	if err != nil {
		cliutil.Fatal(err)
	}
	rr.SetPolicy(rob.Policy)
	var sink *os.File = os.Stdout
	if *outPath != "" {
		sink, err = os.Create(*outPath)
		if err != nil {
			cliutil.Fatal(err)
		}
		defer sink.Close()
	}
	out := bufio.NewWriterSize(sink, 1<<20)
	fmt.Fprintf(out, "<%s>\n", *rootTag)
	if h := rr.Header(); h != nil {
		xmlgen.WriteXML(out, h, "header", 1)
	}
	for rr.More() {
		xmlgen.WriteXML(out, rr.Read(), rr.RecordTypeName(), 1)
	}
	fmt.Fprintf(out, "</%s>\n", *rootTag)
	scanErr := rr.Err()
	if err := out.Flush(); err != nil && scanErr == nil {
		scanErr = err
	}
	if err := rob.Close(); err != nil && scanErr == nil {
		scanErr = err
	}
	if scanErr != nil {
		cliutil.Fatal(scanErr)
	}
}
