// Command padsxml is the generated XML conversion program of section 5.3.2:
// it converts ad hoc data into the canonical XML embedding, including parse
// descriptors for the buggy portions, and can emit the XML Schema the
// output conforms to.
//
// Usage:
//
//	padsxml -desc sirius.pads data.txt          # data -> XML on stdout
//	padsxml -desc sirius.pads -schema           # print the XML Schema
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pads/internal/cliutil"
	"pads/internal/padsrt"
	"pads/internal/xmlgen"
)

func main() {
	descPath := flag.String("desc", "", "PADS description file (required)")
	schema := flag.Bool("schema", false, "print the generated XML Schema instead of converting data")
	rootTag := flag.String("root", "source", "root element name")
	disc := flag.String("disc", "newline", "record discipline: newline, none, fixed:N, lenprefix[:N]")
	ebcdic := flag.Bool("ebcdic", false, "treat the ambient coding as EBCDIC")
	le := flag.Bool("le", false, "little-endian binary integers")
	robustFlags := cliutil.NewRobustFlags()
	flag.Parse()

	if *descPath == "" {
		fmt.Fprintln(os.Stderr, "usage: padsxml -desc description.pads [-schema] [data]")
		os.Exit(2)
	}
	desc := cliutil.MustCompile(*descPath)
	if *schema {
		fmt.Print(desc.Schema())
		return
	}
	opts, err := cliutil.SourceOptions(*disc, *ebcdic, *le)
	if err != nil {
		cliutil.Fatal(err)
	}
	opts = robustFlags.SourceOptions(opts)
	rob, err := robustFlags.Open(nil)
	if err != nil {
		cliutil.Fatal(err)
	}
	in, err := cliutil.OpenData(flag.Arg(0))
	if err != nil {
		cliutil.Fatal(err)
	}
	defer in.Close()

	s := padsrt.NewSource(bufio.NewReaderSize(in, 1<<20), opts...)
	rr, err := desc.Records(s, nil)
	if err != nil {
		cliutil.Fatal(err)
	}
	rr.SetPolicy(rob.Policy)
	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	fmt.Fprintf(out, "<%s>\n", *rootTag)
	if h := rr.Header(); h != nil {
		xmlgen.WriteXML(out, h, "header", 1)
	}
	for rr.More() {
		xmlgen.WriteXML(out, rr.Read(), rr.RecordTypeName(), 1)
	}
	fmt.Fprintf(out, "</%s>\n", *rootTag)
	scanErr := rr.Err()
	if err := out.Flush(); err != nil && scanErr == nil {
		scanErr = err
	}
	if err := rob.Close(); err != nil && scanErr == nil {
		scanErr = err
	}
	if scanErr != nil {
		cliutil.Fatal(scanErr)
	}
}
