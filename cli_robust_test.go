package pads_test

// End-to-end exercise of the fault-tolerance surface of the command-line
// tools (docs/ROBUSTNESS.md): error budgets exit with status 3, quarantine
// files carry one JSON object per errored record and are identical at any
// worker count, and a sticky input error reaches stderr with a non-zero
// exit from every tool.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runExit runs a tool expecting failure; it returns the exit code and
// stderr. Exit code 0 fails the test.
func runExit(t *testing.T, bin, tool string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, tool), args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("%s %v: expected failure, exited 0", tool, args)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: %v", tool, args, err)
	}
	return ee.ExitCode(), stderr.String()
}

func TestCLIRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTools(t)
	work := t.TempDir()

	// A corpus with a known error population: generated CLF (which carries
	// its own documented defects — records whose length field is "-") plus
	// injected garbage lines.
	clean := run(t, bin, "padsgen", nil, "-corpus", "clf", "-n", "40", "-seed", "3")
	lines := strings.SplitAfter(strings.TrimSuffix(clean, "\n"), "\n")
	var mixed strings.Builder
	bad := 0
	for i, l := range lines {
		mixed.WriteString(l)
		if strings.HasSuffix(strings.TrimSuffix(l, "\n"), " -") {
			bad++ // generator defect: unparseable length
		}
		if i%8 == 3 {
			mixed.WriteString("!! not a log line !!\n")
			bad++
		}
	}
	dataPath := filepath.Join(work, "mixed.log")
	if err := os.WriteFile(dataPath, []byte(mixed.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	// Error budgets: -fail-fast and -max-errors exit with status 3 and say
	// why on stderr.
	code, stderr := runExit(t, bin, "padsacc",
		"-desc", "testdata/clf.pads", "-fail-fast", dataPath)
	if code != 3 || !strings.Contains(stderr, "error budget") {
		t.Fatalf("padsacc -fail-fast: exit %d, stderr %q", code, stderr)
	}
	code, stderr = runExit(t, bin, "padsquery",
		"-desc", "testdata/clf.pads", "-q", "count(/elt)", "-max-errors", "2", dataPath)
	if code != 3 || !strings.Contains(stderr, "error budget") {
		t.Fatalf("padsquery -max-errors: exit %d, stderr %q", code, stderr)
	}

	// Quarantine: within budget the scan completes (exit 0) and every
	// errored record lands in the dead-letter file as one JSON object.
	qPath := filepath.Join(work, "q1.jsonl")
	run(t, bin, "padsacc", nil,
		"-desc", "testdata/clf.pads", "-quarantine", qPath, dataPath)
	qBytes, err := os.ReadFile(qPath)
	if err != nil {
		t.Fatal(err)
	}
	qLines := strings.Split(strings.TrimSuffix(string(qBytes), "\n"), "\n")
	if len(qLines) != bad {
		t.Fatalf("quarantined %d records, want %d", len(qLines), bad)
	}
	for _, l := range qLines {
		var e struct {
			Record int    `json:"record"`
			Err    string `json:"err"`
		}
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("quarantine line not JSON: %q: %v", l, err)
		}
		if e.Record == 0 || e.Err == "" {
			t.Fatalf("quarantine entry missing record/err: %q", l)
		}
	}

	// Determinism: the dead-letter stream is byte-identical at any worker
	// count.
	q4Path := filepath.Join(work, "q4.jsonl")
	run(t, bin, "padsacc", nil,
		"-desc", "testdata/clf.pads", "-workers", "4", "-quarantine", q4Path, dataPath)
	q4Bytes, err := os.ReadFile(q4Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(qBytes, q4Bytes) {
		t.Fatalf("quarantine differs between -workers 1 and 4:\n%s\nvs\n%s", qBytes, q4Bytes)
	}

	// Sticky input errors: reading a directory as data fails partway; every
	// tool must report the error on stderr and exit non-zero rather than
	// print results built on a short read.
	for _, tc := range [][]string{
		{"padsacc", "-desc", "testdata/clf.pads", work},
		{"padsfmt", "-desc", "testdata/clf.pads", work},
		{"padsxml", "-desc", "testdata/clf.pads", work},
		{"padsquery", "-desc", "testdata/clf.pads", "-q", "count(/elt)", work},
	} {
		code, stderr := runExit(t, bin, tc[0], tc[1:]...)
		if code == 0 || stderr == "" {
			t.Errorf("%s on unreadable input: exit %d, stderr %q", tc[0], code, stderr)
		}
	}
}
