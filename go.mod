module pads

go 1.22
