// Package pads is a Go implementation of PADS, the declarative data
// description language for processing ad hoc data (Fisher & Gruber, PLDI
// 2005). A description captures the physical layout and semantic properties
// of a source — ASCII, binary, or Cobol/EBCDIC — and from it the system
// derives parsers with per-component error reporting (parse descriptors),
// masks that let each application pay only for the checks it needs,
// statistical profilers (accumulators), format converters (delimited text
// and XML), an XPath-subset query engine over raw data, a random data
// generator, and a compiler that emits standalone Go parsing libraries.
//
// Quick start:
//
//	desc, err := pads.CompileFile("weblog.pads")
//	rr, err := desc.Records(pads.NewSource(file), nil)
//	for rr.More() {
//	    rec := rr.Read()
//	    if rec.PD().Nerr > 0 { /* inspect the parse descriptor */ }
//	}
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping from the paper's sections to this module's packages.
package pads

import (
	"io"

	"pads/internal/accum"
	"pads/internal/baseline"
	"pads/internal/cobol"
	"pads/internal/core"
	"pads/internal/datagen"
	"pads/internal/dsl"
	"pads/internal/fmtconv"
	"pads/internal/interp"
	"pads/internal/padsrt"
	"pads/internal/query"
	"pads/internal/value"
	"pads/internal/xmlgen"
)

// Description is a compiled PADS description: see Compile.
type Description = core.Description

// Compile parses and checks a description given as source text. name labels
// diagnostics.
func Compile(src, name string) (*Description, error) { return core.Compile(src, name) }

// CompileFile reads and compiles a description file.
func CompileFile(path string) (*Description, error) { return core.CompileFile(path) }

// TranslateCopybook converts a Cobol copybook to a PADS description and
// compiles it (section 5.2 of the paper).
func TranslateCopybook(copybook, name string) (*Description, error) {
	prog, err := cobol.Translate(copybook)
	if err != nil {
		return nil, err
	}
	return core.Compile(dsl.Print(prog), name)
}

// ---- input sources ----

// Source is a streaming parse cursor over an input.
type Source = padsrt.Source

// SourceOption configures a Source.
type SourceOption = padsrt.SourceOption

// NewSource wraps an io.Reader; by default records are newline-terminated
// ASCII.
func NewSource(r io.Reader, opts ...SourceOption) *Source { return padsrt.NewSource(r, opts...) }

// NewBytesSource parses in-memory data.
func NewBytesSource(data []byte, opts ...SourceOption) *Source {
	return padsrt.NewBytesSource(data, opts...)
}

// WithDiscipline selects the record discipline.
func WithDiscipline(d Discipline) SourceOption { return padsrt.WithDiscipline(d) }

// WithCoding selects the ambient character coding.
func WithCoding(c Coding) SourceOption { return padsrt.WithCoding(c) }

// WithByteOrder selects the byte order of binary integers.
func WithByteOrder(o ByteOrder) SourceOption { return padsrt.WithByteOrder(o) }

// Discipline divides an input into records.
type Discipline = padsrt.Discipline

// Record disciplines: newline-terminated (ASCII default), fixed-width
// binary, Cobol length-prefixed, and whole-input.
func Newline() Discipline             { return padsrt.Newline() }
func FixedWidth(width int) Discipline { return padsrt.FixedWidth(width) }
func LenPrefix() Discipline           { return padsrt.LenPrefix() }
func NoRecords() Discipline           { return padsrt.NoRecords() }

// CustomDisc adapts user-supplied functions into a record discipline — the
// paper's "allows users to define their own encodings" of records.
type CustomDisc = padsrt.CustomDisc

// Coding is the ambient character coding.
type Coding = padsrt.Coding

// Codings.
const (
	ASCII  = padsrt.ASCII
	EBCDIC = padsrt.EBCDIC
)

// ByteOrder selects binary integer byte order.
type ByteOrder = padsrt.ByteOrder

// Byte orders.
const (
	BigEndian    = padsrt.BigEndian
	LittleEndian = padsrt.LittleEndian
)

// ---- values and parse descriptors ----

// Value is a parsed datum carrying its parse descriptor.
type Value = value.Value

// PD is a parse descriptor: the per-value error report.
type PD = padsrt.PD

// ErrCode identifies the first error detected while parsing a value.
type ErrCode = padsrt.ErrCode

// State is the parse state: Normal, Partial, or Panicking.
type State = padsrt.State

// Parse states.
const (
	Normal    = padsrt.Normal
	Partial   = padsrt.Partial
	Panicking = padsrt.Panicking
)

// ValueString renders a value compactly for diagnostics.
func ValueString(v Value) string { return value.String(v) }

// ValueEqual compares two value trees structurally.
func ValueEqual(a, b Value) bool { return value.Equal(a, b) }

// ---- masks ----

// Mask controls how much work a parse performs per component.
type Mask = padsrt.Mask

// Mask settings.
const (
	Ignore      = padsrt.Ignore
	Set         = padsrt.Set
	Check       = padsrt.Check
	CheckAndSet = padsrt.CheckAndSet
)

// MaskNode is a mask tree; nil means check-and-set everything.
type MaskNode = padsrt.MaskNode

// NewMask builds a mask tree node with every control set to m.
func NewMask(m Mask) *MaskNode { return padsrt.NewMaskNode(m) }

// ---- derived tools ----

// RecordReader iterates a data source one record at a time.
type RecordReader = interp.RecordReader

// Accum is a statistical profile of a data source (section 5.2).
type Accum = accum.Accum

// AccumConfig controls accumulator tracking limits.
type AccumConfig = accum.Config

// NewAccum builds an accumulator (zero config selects the paper's
// defaults: track 1000 distinct values, print the top 10).
func NewAccum(cfg AccumConfig) *Accum { return accum.New(cfg) }

// Formatter renders values as delimited records (section 5.3.1).
type Formatter = fmtconv.Formatter

// NewFormatter builds a formatter over the delimiter list.
func NewFormatter(delims ...string) *Formatter { return fmtconv.New(delims...) }

// WriteXML writes the canonical XML form of a value (section 5.3.2).
func WriteXML(w io.Writer, v Value, tag string) error { return xmlgen.WriteXML(w, v, tag, 0) }

// XMLString renders the canonical XML form of a value.
func XMLString(v Value, tag string) string { return xmlgen.XMLString(v, tag) }

// Node is the tree view of a parsed value used for queries (section 5.4).
type Node = query.Node

// Query is a compiled XPath-subset query.
type Query = query.Query

// CompileQuery compiles an XPath-subset query.
func CompileQuery(src string) (*Query, error) { return query.Compile(src) }

// NewNode roots a query tree at a parsed value.
func NewNode(name string, v Value) *Node { return query.NewNode(name, v) }

// ---- synthetic data (the paper's evaluation substrate) ----

// CLFConfig parameterizes the Common Log Format generator.
type CLFConfig = datagen.CLFConfig

// SiriusConfig parameterizes the Sirius provisioning-data generator.
type SiriusConfig = datagen.SiriusConfig

// DefaultCLF mirrors the section 5.2 CLF error population.
func DefaultCLF(records int) CLFConfig { return datagen.DefaultCLF(records) }

// DefaultSirius mirrors the section 7 Sirius data set, scaled.
func DefaultSirius(records int) SiriusConfig { return datagen.DefaultSirius(records) }

// GenerateCLF writes synthetic web server log data.
func GenerateCLF(w io.Writer, cfg CLFConfig) (datagen.CLFStats, error) { return datagen.CLF(w, cfg) }

// GenerateSirius writes synthetic provisioning data.
func GenerateSirius(w io.Writer, cfg SiriusConfig) (datagen.SiriusStats, error) {
	return datagen.Sirius(w, cfg)
}

// Corruptor injects controlled deviations into record-oriented data — data
// that "deviates from [the specification] in specified ways" (section 9).
type Corruptor = datagen.Corruptor

// Deviation selects a corruption kind for a Corruptor.
type Deviation = datagen.Deviation

// Deviations.
const (
	MangleDigit    = datagen.MangleDigit
	DropByte       = datagen.DropByte
	DupByte        = datagen.DupByte
	TruncateRecord = datagen.TruncateRecord
)

// ---- the hand-written comparators of section 7 ----

// SiriusVet runs the Perl-equivalent vetting program.
func SiriusVet(r io.Reader, clean, errOut io.Writer) (baseline.VetStats, error) {
	return baseline.SiriusVet(r, clean, errOut)
}

// SiriusSelect runs the Perl-equivalent Figure 9 selection program.
func SiriusSelect(r io.Reader, w io.Writer, state string) (baseline.SelectStats, error) {
	return baseline.SiriusSelect(r, w, state)
}

// CountRecords counts newline-terminated records, the trivial baseline.
func CountRecords(r io.Reader) (int, error) { return baseline.CountRecords(r) }
