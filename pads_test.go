package pads_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pads"
)

func compileTestdata(t *testing.T, name string) *pads.Description {
	t.Helper()
	d, err := pads.CompileFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPublicAPIEndToEnd(t *testing.T) {
	desc := compileTestdata(t, "clf.pads")
	if desc.SourceType() != "clt_t" {
		t.Errorf("source type = %s", desc.SourceType())
	}

	data, err := os.ReadFile(filepath.Join("testdata", "clf.sample"))
	if err != nil {
		t.Fatal(err)
	}

	// Whole-source parse.
	v, err := desc.ParseAll(pads.NewBytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	if v.PD().Nerr != 0 {
		t.Fatalf("parse errors: %v", v.PD())
	}

	// Record-at-a-time with accumulation.
	rr, err := desc.Records(pads.NewBytesSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := pads.NewAccum(pads.AccumConfig{})
	n := 0
	for rr.More() {
		acc.Add(rr.Read())
		n++
	}
	if n != 2 || acc.Total() != 2 {
		t.Fatalf("records = %d, accum total = %d", n, acc.Total())
	}

	// Formatting (Figure 8).
	f := pads.NewFormatter("|")
	f.DateFormat = "%D:%T"
	rr2, _ := desc.Records(pads.NewBytesSource(data), nil)
	got := f.FormatRecord(rr2.Read())
	if got != "207.136.97.49|-|-|10/16/97:01:46:51|GET|/tk/p.txt|1|0|200|30" {
		t.Errorf("formatted = %s", got)
	}

	// XML and Schema.
	xml := pads.XMLString(v, "log")
	if !strings.Contains(xml, "<req_uri>/tk/p.txt</req_uri>") {
		t.Errorf("xml missing uri:\n%s", xml)
	}
	if !strings.Contains(desc.Schema(), `<xs:complexType name="entry_t">`) {
		t.Error("schema missing entry_t")
	}

	// Query.
	nodes, _, _, err := desc.RunQuery(`/elt[response = 200]`, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Errorf("query matched %d", len(nodes))
	}
	_, agg, isAgg, err := desc.RunQuery(`count(/elt)`, v)
	if err != nil || !isAgg || agg != 2 {
		t.Errorf("count = %v (agg=%v, err=%v)", agg, isAgg, err)
	}

	// Write-back round trip.
	out, err := desc.WriteValue(nil, desc.SourceType(), v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Error("write-back differs from input")
	}

	// Code generation.
	code, err := desc.GenerateGo("clf")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "func ReadEntry_t") {
		t.Error("generated code missing ReadEntry_t")
	}

	// Living documentation round trip.
	reprinted, err := pads.Compile(desc.Print(), "reprint")
	if err != nil {
		t.Fatalf("pretty-printed description does not recompile: %v", err)
	}
	if reprinted.SourceType() != desc.SourceType() {
		t.Error("reprint changed the source type")
	}
}

func TestPublicMasks(t *testing.T) {
	desc := compileTestdata(t, "sirius.pads")
	data := []byte("0|1005022800\n1|1|1|0|0|0|0||1|T|0|u|s|A|2000|B|1000\n")

	rr, err := desc.Records(pads.NewBytesSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec := rr.Read(); rec.PD().Nerr == 0 {
		t.Fatal("sort violation not flagged under the default mask")
	}

	mask := pads.NewMask(pads.CheckAndSet)
	events := pads.NewMask(pads.CheckAndSet)
	events.Compound = pads.Set
	mask.SetField("events", events)
	rr2, _ := desc.Records(pads.NewBytesSource(data), mask)
	if rec := rr2.Read(); rec.PD().Nerr != 0 {
		t.Fatalf("masked read flagged: %v", rec.PD())
	}
}

func TestPublicGenerators(t *testing.T) {
	var clf bytes.Buffer
	st, err := pads.GenerateCLF(&clf, pads.DefaultCLF(100))
	if err != nil || st.Records != 100 {
		t.Fatalf("clf stats = %+v err=%v", st, err)
	}
	var sir bytes.Buffer
	sst, err := pads.GenerateSirius(&sir, pads.DefaultSirius(100))
	if err != nil || sst.Records != 100 {
		t.Fatalf("sirius stats = %+v err=%v", sst, err)
	}
	// Baselines run over the generated data.
	vst, err := pads.SiriusVet(bytes.NewReader(sir.Bytes()), nil, nil)
	if err != nil || vst.Records != 100 {
		t.Fatalf("vet stats = %+v err=%v", vst, err)
	}
	n, err := pads.CountRecords(bytes.NewReader(sir.Bytes()))
	if err != nil || n != 101 { // header + records
		t.Fatalf("count = %d err=%v", n, err)
	}
	if _, err := pads.SiriusSelect(bytes.NewReader(sir.Bytes()), nil, "LOC_0"); err != nil {
		t.Fatal(err)
	}
	// Description-driven generation.
	desc := compileTestdata(t, "sirius.pads")
	g := desc.NewGenerator(1)
	if _, err := g.GenerateType("event_t"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCopybook(t *testing.T) {
	desc, err := pads.TranslateCopybook(`
01 REC.
   05 ID   PIC 9(4).
   05 NAME PIC X(6).
`, "rec.cpy")
	if err != nil {
		t.Fatal(err)
	}
	if desc.SourceType() != "rec_file" {
		t.Errorf("source type = %s", desc.SourceType())
	}
}

func TestCompileErrorsAreAggregated(t *testing.T) {
	_, err := pads.Compile("Pstruct s { mystery_t x; };\nPstruct r { other_t y; };", "bad.pads")
	if err == nil {
		t.Fatal("expected errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "mystery_t") || !strings.Contains(msg, "other_t") {
		t.Errorf("aggregated error missing diagnostics: %s", msg)
	}
	if !strings.Contains(msg, "bad.pads") {
		t.Errorf("error missing file label: %s", msg)
	}
}

func TestPublicWrappers(t *testing.T) {
	// Disciplines and source options.
	for _, d := range []pads.Discipline{pads.Newline(), pads.FixedWidth(4), pads.LenPrefix(), pads.NoRecords()} {
		if d.Name() == "" {
			t.Error("unnamed discipline")
		}
	}
	s := pads.NewBytesSource([]byte("x"),
		pads.WithDiscipline(pads.NoRecords()),
		pads.WithCoding(pads.EBCDIC),
		pads.WithByteOrder(pads.LittleEndian))
	if s.Coding() != pads.EBCDIC || s.ByteOrder() != pads.LittleEndian {
		t.Error("source options lost through wrappers")
	}

	// Value helpers and XML.
	desc := compileTestdata(t, "clf.pads")
	data, _ := os.ReadFile(filepath.Join("testdata", "clf.sample"))
	v1, _ := desc.ParseAll(pads.NewBytesSource(data))
	v2, _ := desc.ParseAll(pads.NewBytesSource(data))
	if !pads.ValueEqual(v1, v2) {
		t.Error("ValueEqual false for identical parses")
	}
	if !strings.Contains(pads.ValueString(v1), "GET") {
		t.Error("ValueString lost content")
	}
	var sb strings.Builder
	if err := pads.WriteXML(&sb, v1, "log"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<log>") {
		t.Error("WriteXML empty")
	}

	// Query compilation and the node API.
	q, err := pads.CompileQuery("count(/elt)")
	if err != nil {
		t.Fatal(err)
	}
	_, n, isAgg := q.Eval(pads.NewNode("log", v1))
	if !isAgg || n != 2 {
		t.Errorf("count = %v (agg=%v)", n, isAgg)
	}
	if _, err := pads.CompileQuery("/["); err == nil {
		t.Error("bad query compiled")
	}

	// Copybook error path.
	if _, err := pads.TranslateCopybook("05 X PIC X.", "x.cpy"); err == nil {
		t.Error("bad copybook accepted")
	}

	// Streaming query via the public alias.
	sdesc := compileTestdata(t, "sirius.pads")
	var sir bytes.Buffer
	cfg := pads.DefaultSirius(50)
	cfg.SyntaxErrors = 0
	cfg.SortViolations = 0
	if _, err := pads.GenerateSirius(&sir, cfg); err != nil {
		t.Fatal(err)
	}
	hits := 0
	if _, err := sdesc.StreamQuery(pads.NewBytesSource(sir.Bytes()), nil, "header/order_num",
		func(rec pads.Value, nodes []*pads.Node) bool {
			hits += len(nodes)
			return true
		}); err != nil {
		t.Fatal(err)
	}
	if hits != 50 {
		t.Errorf("streaming hits = %d", hits)
	}

	// Corrupted data through the public generator + vet baseline.
	vst, err := pads.SiriusVet(bytes.NewReader(sir.Bytes()), nil, nil)
	if err != nil || vst.Errors != 0 {
		t.Errorf("vet of clean corpus: %+v, %v", vst, err)
	}
}

func TestPublicStates(t *testing.T) {
	if pads.Normal.String() != "Normal" || pads.Partial.String() != "Partial" || pads.Panicking.String() != "Panicking" {
		t.Error("state constants broken")
	}
	m := pads.NewMask(pads.Check)
	if m.BaseMask() != pads.Check {
		t.Error("mask wrapper broken")
	}
	if pads.Ignore.DoSet() || !pads.CheckAndSet.DoCheck() || !pads.Set.DoSet() {
		t.Error("mask bits broken")
	}
}
