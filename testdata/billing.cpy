* Altair-style Cobol billing record (Figure 1, row 4). Translated to a
* PADS description by cmd/cobol2pads; testdata/billing.pads is its output.
01 BILLING-RECORD.
   05 ACCOUNT-ID        PIC 9(8).
   05 CUSTOMER-NAME     PIC X(12).
   05 BALANCE           PIC S9(7)V99 COMP-3.
   05 REGION-CODE       PIC 99.
   05 USAGE-BLOCK.
      10 CALL-COUNT     PIC 9(5).
      10 TOTAL-MINUTES  PIC S9(5) COMP.
   05 MONTH-TOTALS      PIC S9(5) OCCURS 3 TIMES.
   05 FILLER            PIC X(2).
