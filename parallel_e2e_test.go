package pads_test

// End-to-end determinism tests for the record-sharded parallel engine
// (internal/parallel): on the synthetic Sirius and CLF corpora, the
// parallel paths must produce byte-identical outputs to the sequential
// ones — with one worker everywhere, and for the order-preserving merges
// (vet/select/count, ParseAllParallel) at any worker count.

import (
	"bytes"
	"strings"
	"testing"

	"pads/internal/accum"
	"pads/internal/core"
	"pads/internal/fig10"
	"pads/internal/padsrt"
)

func TestParallelVetSirius(t *testing.T) {
	benchCorpus(nil)
	var wantClean, wantErr bytes.Buffer
	wantStats, err := fig10.PadsVet(bytes.NewReader(siriusData), &wantClean, &wantErr)
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.Errors == 0 {
		t.Fatal("corpus has no erroneous records; the test would prove nothing")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		var gotClean, gotErr bytes.Buffer
		gotStats, err := fig10.PadsVetParallel(siriusData, &gotClean, &gotErr, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gotStats != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, gotStats, wantStats)
		}
		if !bytes.Equal(gotClean.Bytes(), wantClean.Bytes()) {
			t.Fatalf("workers=%d: clean stream differs from sequential", workers)
		}
		if !bytes.Equal(gotErr.Bytes(), wantErr.Bytes()) {
			t.Fatalf("workers=%d: error stream differs from sequential", workers)
		}
	}
}

func TestParallelSelectSirius(t *testing.T) {
	benchCorpus(nil)
	var want bytes.Buffer
	wantStats, err := fig10.PadsSelect(bytes.NewReader(siriusClean), &want, benchState)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var got bytes.Buffer
		gotStats, err := fig10.PadsSelectParallel(siriusClean, &got, benchState, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gotStats != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, gotStats, wantStats)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("workers=%d: selection output differs from sequential", workers)
		}
	}
}

func TestParallelCountSirius(t *testing.T) {
	benchCorpus(nil)
	want, err := fig10.PadsCount(bytes.NewReader(siriusClean))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := fig10.PadsCountParallel(siriusClean, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: %d records, want %d", workers, got, want)
		}
	}
}

// TestParallelAccumulate: the interpreter path. With workers=1 the whole
// accumulator report — good/bad counts, per-code error tallies, min/max/avg,
// quantiles, histogram, top values — is byte-identical to the sequential
// reader's, on both corpora (Sirius carries the documented error
// population, so parse-descriptor error counts are exercised too). With
// workers=4 the exact components must still match; only the sampled
// quantile lines and — for fields with more distinct values than
// MaxTracked, where each shard's tracker saturates independently — the
// top-values block may differ (the two documented approximations of
// accum.Merge).
func TestParallelAccumulate(t *testing.T) {
	benchCorpus(nil)
	cases := []struct {
		name string
		desc string
		data []byte
	}{
		{"sirius", "testdata/sirius.pads", siriusData},
		{"clf", "testdata/clf.pads", clfData},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			desc, err := core.CompileFile(tc.desc)
			if err != nil {
				t.Fatal(err)
			}
			cfg := accum.DefaultConfig()
			seqAcc, seqN, err := desc.AccumulateReader(bytes.NewReader(tc.data), nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var seqRep bytes.Buffer
			seqAcc.Report(&seqRep, "<top>")

			oneAcc, oneN, err := desc.AccumulateParallel(tc.data, nil, cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if oneN != seqN {
				t.Fatalf("workers=1: %d records, want %d", oneN, seqN)
			}
			var oneRep bytes.Buffer
			oneAcc.Report(&oneRep, "<top>")
			if oneRep.String() != seqRep.String() {
				t.Fatalf("workers=1 report differs from sequential:\n--- parallel\n%.2000s\n--- sequential\n%.2000s",
					oneRep.String(), seqRep.String())
			}

			fourAcc, fourN, err := desc.AccumulateParallel(tc.data, nil, cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			if fourN != seqN {
				t.Fatalf("workers=4: %d records, want %d", fourN, seqN)
			}
			if fourAcc.Good != seqAcc.Good || fourAcc.Bad != seqAcc.Bad {
				t.Fatalf("workers=4: good/bad %d/%d, want %d/%d", fourAcc.Good, fourAcc.Bad, seqAcc.Good, seqAcc.Bad)
			}
			for code, n := range seqAcc.ErrCounts {
				if fourAcc.ErrCounts[code] != n {
					t.Fatalf("workers=4: err %v count %d, want %d", code, fourAcc.ErrCounts[code], n)
				}
			}
			// The full multi-worker reports agree except possibly on the
			// sampled quantile lines and the tracked-top-values blocks.
			var fourRep bytes.Buffer
			fourAcc.Report(&fourRep, "<top>")
			if got, want := stripApprox(fourRep.String()), stripApprox(seqRep.String()); got != want {
				t.Fatalf("workers=4 report differs beyond the approximate lines:\n--- parallel\n%.2000s\n--- sequential\n%.2000s", got, want)
			}
		})
	}
}

// stripApprox drops the report lines that accum.Merge does not promise to
// reproduce exactly across shards: the reservoir-sampled quantiles and the
// top-values block (whose tracked set is exact only while no shard's
// tracker saturates). Counts, error tallies, min/max/avg, histograms, and
// branch distributions remain and must match byte-for-byte.
func stripApprox(report string) string {
	var out []string
	for _, line := range strings.Split(report, "\n") {
		switch {
		case strings.HasPrefix(line, "quantiles"),
			strings.HasPrefix(line, "top "),
			strings.HasPrefix(line, "tracked "),
			strings.HasPrefix(line, "val:"),
			strings.HasPrefix(line, "SUMMING "):
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestParseAllParallel: the whole-source parse used by padsquery. The
// reassembled value tree must answer queries identically to the sequential
// parse, at any worker count.
func TestParseAllParallel(t *testing.T) {
	benchCorpus(nil)
	desc, err := core.CompileFile("testdata/sirius.pads")
	if err != nil {
		t.Fatal(err)
	}
	seqVal, err := desc.ParseAll(padsrt.NewBytesSource(siriusClean))
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"count(/es/elt)",
		"sum(/es/elt/header/order_num)",
		"count(/es/elt/events/elt)",
	}
	for _, workers := range []int{1, 4} {
		parVal, err := desc.ParseAllParallel(siriusClean, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, q := range queries {
			_, wantAgg, wantIsAgg, err := desc.RunQuery(q, seqVal)
			if err != nil {
				t.Fatalf("query %q: %v", q, err)
			}
			_, gotAgg, gotIsAgg, err := desc.RunQuery(q, parVal)
			if err != nil {
				t.Fatalf("workers=%d query %q: %v", workers, q, err)
			}
			if !wantIsAgg || !gotIsAgg || gotAgg != wantAgg {
				t.Fatalf("workers=%d query %q = %v, want %v", workers, q, gotAgg, wantAgg)
			}
		}
	}
}
