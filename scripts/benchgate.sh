#!/usr/bin/env bash
# Perf-regression gate: run the Figure 10 benchmark and compare bytes/sec
# per task against the newest committed BENCH_*.json trajectory point
# (scripts/bench.sh). Fails when any pads task regresses by more than the
# threshold (default 15%), so an accidental hot-path pessimization is
# caught before it lands rather than excavated from the trajectory later.
#
# Benchmarks need a quiet machine: this gate is opt-in (PADS_BENCHGATE=1 in
# scripts/ci.sh, or run directly). Knobs:
#   PADS_BENCHGATE_THRESHOLD  allowed regression percent (default 15)
#   PADS_BENCHGATE_RECORDS    corpus size (default 20000, matching bench.sh
#                             trajectory points)
#   PADS_BENCHGATE_RUNS       timed runs per task (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${PADS_BENCHGATE_THRESHOLD:-15}"
baseline="$(git ls-files 'BENCH_*.json' | sort | tail -1)"
if [[ -z "$baseline" ]]; then
    echo "benchgate: no committed BENCH_*.json baseline; nothing to gate" >&2
    exit 0
fi

n="${PADS_BENCHGATE_RECORDS:-20000}"
runs="${PADS_BENCHGATE_RUNS:-3}"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT
go run ./cmd/padsbench -json -noperl -n "$n" -runs "$runs" >"$out"

python3 - "$baseline" "$out" "$threshold" <<'EOF'
import json
import sys

base = json.load(open(sys.argv[1]))
cur = json.load(open(sys.argv[2]))
threshold = float(sys.argv[3])

# Gate only on rows present in BOTH reports: a task that exists on one side
# only (added since the baseline, or retired from it) is a warning, not a
# failure — the next committed trajectory point picks it up.
rate = {(r["task"], r["prog"]): r["bytes_per_sec"] for r in cur["rows"]}
baserate = {(r["task"], r["prog"]): r["bytes_per_sec"] for r in base["rows"]}
fail = False
for r in base["rows"]:
    if r["prog"] != "pads":
        continue
    key = (r["task"], r["prog"])
    if key not in rate:
        print(f"benchgate: WARNING: baseline task {r['task']!r} missing from current run (not gated)")
        continue
    old, new = r["bytes_per_sec"], rate[key]
    delta = (new - old) / old * 100
    bad = delta < -threshold
    mark = "REGRESSION" if bad else "ok"
    print(f"benchgate: {r['task']:<14} {old/1e6:8.1f} -> {new/1e6:8.1f} MB/s  {delta:+6.1f}%  {mark}")
    fail = fail or bad
for task, prog in sorted(rate):
    if prog == "pads" and (task, prog) not in baserate:
        print(f"benchgate: WARNING: new task {task!r} has no baseline yet (not gated)")

sys.exit(1 if fail else 0)
EOF

echo "benchgate: OK (baseline $baseline, threshold ${threshold}%)"
