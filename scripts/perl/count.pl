#!/usr/bin/perl
# The trivial record-counting baseline of section 7 (124 seconds of Perl on
# the paper's 2.2GB file).
use strict;
use warnings;
my $n = 0;
$n++ while <STDIN>;
print "$n\n";
