#!/usr/bin/perl
# The Sirius vetting program of section 7 of the PADS paper, reconstructed:
# split each record on '|' (the paper: "the PERL vetter uses the built-in
# split operator to produce an in-memory array of the pipe-separated
# fields"), validate every field and the event-timestamp sort order, and
# echo clean and erroneous records to separate files.
#
# usage: perl vet.pl [clean-file [error-file]] < data
use strict;
use warnings;

my ($cleanF, $errF) = @ARGV;
$cleanF ||= '/dev/null';
$errF   ||= '/dev/null';
open(my $clean, '>', $cleanF) or die "vet.pl: $cleanF: $!";
open(my $err,   '>', $errF)   or die "vet.pl: $errF: $!";

my ($records, $good, $bad) = (0, 0, 0);
my $first = 1;
while (my $line = <STDIN>) {
    chomp $line;
    if ($first) {            # the summary header record
        $first = 0;
        print $clean "$line\n";
        next;
    }
    $records++;
    if (vet($line)) {
        $good++;
        print $clean "$line\n";
    } else {
        $bad++;
        print $err "$line\n";
    }
}
print STDERR "vet.pl: $records records, $good clean, $bad errors\n";

sub vet {
    my ($line) = @_;
    my @f = split /\|/, $line, -1;
    return 0 if @f < 15;
    # order number, AT&T order number, order version: unsigned integers
    for my $i (0 .. 2) {
        return 0 unless $f[$i] =~ /^\d+$/;
    }
    # four telephone numbers: optional digits
    for my $i (3 .. 6) {
        return 0 unless $f[$i] eq '' || $f[$i] =~ /^\d+$/;
    }
    # zip code: optional 5 digits or zip+4
    return 0 unless $f[7] eq '' || $f[7] =~ /^\d{5}(-\d{4})?$/;
    # billing identifier: integer or generated no_ii<digits>
    return 0 unless $f[8] =~ /^(?:no_ii\d+|-?\d+)$/;
    # order details: unsigned integer
    return 0 unless $f[10] =~ /^\d+$/;
    # events: (state, timestamp) pairs with non-decreasing timestamps
    my @ev = @f[13 .. $#f];
    return 0 if @ev % 2;
    my $prev = -1;
    for (my $i = 0; $i < @ev; $i += 2) {
        return 0 if $ev[$i] eq '';
        return 0 unless $ev[$i + 1] =~ /^\d+$/;
        return 0 if $ev[$i + 1] < $prev;
        $prev = $ev[$i + 1];
    }
    return 1;
}
