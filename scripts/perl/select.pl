#!/usr/bin/perl
# The Sirius selection program of section 7 of the PADS paper: print the
# order number of every record that ever passes through state $STATE, using
# the Figure 9 regular expression verbatim:
#
#   qr/^(\d+)\|(?:[^|]*\|){12}(?:[^|]*\|[^|]*\|)*$STATE\|/;
#
# usage: perl select.pl STATE < data > order-numbers
use strict;
use warnings;

my $STATE = $ARGV[0] or die "usage: select.pl STATE < data\n";
my $re = qr/^(\d+)\|(?:[^|]*\|){12}(?:[^|]*\|[^|]*\|)*\Q$STATE\E\|/;

my $matched = 0;
my $first   = 1;
while (my $line = <STDIN>) {
    if ($first) { $first = 0; next; }    # skip the summary header
    if ($line =~ $re) {
        print "$1\n";
        $matched++;
    }
}
print STDERR "select.pl: $matched matches\n";
