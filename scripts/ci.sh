#!/usr/bin/env bash
# CI gate: vet, the full test suite under the race detector (the concurrency
# gate of docs/PARALLEL.md — scripts/race.sh remains as the standalone
# entry), and a telemetry smoke test that drives the observability surface
# of docs/OBSERVABILITY.md end to end through the real binaries.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l cmd internal examples ./*.go)"
if [[ -n "$unformatted" ]]; then
    echo "ci: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race ./...

# Telemetry smoke test: every -stats / -trace / -json flag must run clean on
# a real corpus and produce the shape its consumers expect.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp" ./cmd/...

"$tmp/padsbench" -n 200 -runs 1 -noperl -json >"$tmp/bench.json" 2>/dev/null
grep -q '"schema": "pads-bench/v1"' "$tmp/bench.json"
grep -q '"counters"' "$tmp/bench.json"
grep -q '"gomaxprocs"' "$tmp/bench.json"
grep -q '"hot_nodes"' "$tmp/bench.json"

"$tmp/padsbench" -n 200 -runs 1 -noperl -keep "$tmp/sirius.data" >/dev/null

"$tmp/padsacc" -desc testdata/sirius.pads -stats \
    -trace "$tmp/trace.jsonl" -trace-last 50 \
    "$tmp/sirius.data" >/dev/null 2>"$tmp/stats.txt"
grep -q 'parse telemetry' "$tmp/stats.txt"
grep -q 'speculation' "$tmp/stats.txt"
grep -q 'intern' "$tmp/stats.txt"
test "$(wc -l <"$tmp/trace.jsonl")" -eq 50
grep -q '"ev":"record_end"' "$tmp/trace.jsonl"

"$tmp/padsacc" -desc testdata/sirius.pads -stats -workers 4 \
    "$tmp/sirius.data" >/dev/null 2>"$tmp/stats-par.txt"
grep -q 'workers' "$tmp/stats-par.txt"

"$tmp/padsquery" -desc testdata/sirius.pads -q 'count(/es/elt)' -stats \
    "$tmp/sirius.data" >/dev/null 2>"$tmp/stats-query.txt"
grep -q 'parse telemetry' "$tmp/stats-query.txt"

"$tmp/padsfmt" -desc testdata/sirius.pads -stats \
    "$tmp/sirius.data" >/dev/null 2>"$tmp/stats-fmt.txt"
grep -q 'parse telemetry' "$tmp/stats-fmt.txt"

# Profiler smoke test (docs/OBSERVABILITY.md): -profile must exit 0 with a
# non-empty attribution table naming description node paths, and the folded
# output must be flamegraph-ready (semicolon-joined stacks).
"$tmp/padsacc" -desc testdata/sirius.pads -profile \
    -profile-folded "$tmp/folded.txt" \
    "$tmp/sirius.data" >/dev/null 2>"$tmp/prof.txt"
grep -q 'parse profile' "$tmp/prof.txt"
# The attribution table and folded stacks must name description node paths
# (dot- and semicolon-joined respectively) without hard-coding any one
# description's field names.
grep -Eq '[a-z_][a-z_0-9]*(\.[a-z_0-9]+)+$' "$tmp/prof.txt"
grep -Eq '^[a-z_][a-z_0-9]*(;[a-z_0-9]+)+ [0-9]+$' "$tmp/folded.txt"

# Disabled profiling must stay off the allocation hot path: the regression
# test pins a parse with an attached-but-idle profiler to 0 extra allocs/op.
go test -run 'TestDisabledProfilingNoAllocs' -count=1 ./internal/interp >/dev/null

# Robustness smoke test (docs/ROBUSTNESS.md): the fuzz targets must survive
# a short budget, and the budget/quarantine flags must behave on a corpus
# with a known error population.
go test -fuzz=FuzzParseDescription -fuzztime=5s -run='^$' ./internal/sema >/dev/null
go test -fuzz=FuzzInterpParse -fuzztime=5s -run='^$' ./internal/interp >/dev/null

"$tmp/padsgen" -corpus clf -n 500 -seed 3 >"$tmp/clf.data"
printf '!! not a log line !!\n' >>"$tmp/clf.data"

# Within budget: the scan completes and dead-letters the errored records.
"$tmp/padsacc" -desc testdata/clf.pads -quarantine "$tmp/q.jsonl" -stats \
    "$tmp/clf.data" >/dev/null 2>"$tmp/stats-rob.txt"
test -s "$tmp/q.jsonl"
grep -q '"record"' "$tmp/q.jsonl"
grep -q 'quarantined' "$tmp/stats-rob.txt"

# The quarantine stream is byte-identical at any worker count.
"$tmp/padsacc" -desc testdata/clf.pads -workers 4 -quarantine "$tmp/q4.jsonl" \
    "$tmp/clf.data" >/dev/null
cmp -s "$tmp/q.jsonl" "$tmp/q4.jsonl"

# Over budget: exit status 3, distinct from hard failure.
set +e
"$tmp/padsacc" -desc testdata/clf.pads -fail-fast "$tmp/clf.data" >/dev/null 2>&1
status=$?
set -e
test "$status" -eq 3

# Out-of-core smoke (docs/ROBUSTNESS.md, "Out-of-core jobs"): a corpus
# larger than the memory limit, parsed segment-at-a-time under GOMEMLIMIT,
# SIGKILLed mid-run, then resumed from the durable manifest — the resumed
# report and quarantine must be byte-identical to an uninterrupted
# out-of-core run of the same plan.
"$tmp/padsgen" -corpus sirius -n 380000 -seed 11 >"$tmp/big.data" # ~64 MB

GOMEMLIMIT=64MiB "$tmp/padsacc" -desc testdata/sirius.pads -out-of-core \
    -segment-size 1m -workers 2 -manifest "$tmp/ooc-full.manifest" \
    -quarantine "$tmp/ooc-full.q" "$tmp/big.data" >"$tmp/ooc-full.report"

GOMEMLIMIT=64MiB "$tmp/padsacc" -desc testdata/sirius.pads -out-of-core \
    -segment-size 1m -workers 2 -manifest "$tmp/ooc-kill.manifest" \
    -quarantine "$tmp/ooc-kill.q" "$tmp/big.data" >/dev/null 2>&1 &
ooc_pid=$!
sleep 1
kill -KILL "$ooc_pid" 2>/dev/null || true
set +e
wait "$ooc_pid" 2>/dev/null
set -e

if [[ -f "$tmp/ooc-kill.manifest" ]]; then
    # Resume replays the committed segments' checkpoints and parses the
    # rest. If the kill landed after completion this is a pure re-report;
    # either way the output must match the uninterrupted run.
    GOMEMLIMIT=64MiB "$tmp/padsacc" -desc testdata/sirius.pads \
        -resume "$tmp/ooc-kill.manifest" "$tmp/big.data" >"$tmp/ooc-resumed.report"
else
    # The kill landed before the manifest's first fsync: nothing durable to
    # resume, so the job restarts from scratch — same plan, same output.
    GOMEMLIMIT=64MiB "$tmp/padsacc" -desc testdata/sirius.pads -out-of-core \
        -segment-size 1m -workers 2 -manifest "$tmp/ooc-kill.manifest" \
        -quarantine "$tmp/ooc-kill.q" "$tmp/big.data" >"$tmp/ooc-resumed.report"
fi
cmp -s "$tmp/ooc-full.report" "$tmp/ooc-resumed.report"
cmp -s "$tmp/ooc-full.q" "$tmp/ooc-kill.q"

# Daemon chaos smoke (docs/ROBUSTNESS.md): start a real padsd process with
# chaos mode on, replay the seeded fault corpus through its HTTP surface,
# SIGTERM it, and assert a clean drain with a non-empty quarantine file —
# plus the hard-drain path (in-flight parse cancelled through the runtime
# deadline hook, exit status 4). Runs under the race detector: the daemon's
# own goroutine-leak checks only mean something when the schedule is hostile.
go test -race -count=1 -run 'TestPadsdDaemon' . >/dev/null

# Perf-regression gate (scripts/benchgate.sh): opt-in, because benchmark
# numbers from a noisy shared machine would fail the build for no reason.
if [[ "${PADS_BENCHGATE:-0}" == "1" ]]; then
    scripts/benchgate.sh
fi

echo "ci: OK"
