#!/usr/bin/env bash
# Benchmark trajectory: run the Figure 10 reproduction with -json and write
# a dated BENCH_<date>.json (pads-bench/v1, internal/telemetry.BenchReport)
# at the repo root. Committing these files over time gives the project a
# machine-readable performance history — wall time, bytes/sec, allocations,
# the runtime parse counters of docs/OBSERVABILITY.md per row, and the
# per-node hot list of one profiled interpreter pass. Each report is stamped
# with the commit, GOMAXPROCS, and hostname so trajectory deltas can be
# traced to the code and machine that produced them.
#
# Usage: scripts/bench.sh [extra padsbench flags]
#   scripts/bench.sh                    # default corpus (2M records)
#   scripts/bench.sh -n 100000 -runs 5  # smaller, more runs
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_$(date +%Y-%m-%d).json"
go run ./cmd/padsbench -json "$@" >"$out"

# Refuse to record a report missing the provenance stamps or the hot list;
# a half-empty trajectory point is worse than none.
grep -q '"gomaxprocs"' "$out"
grep -q '"hot_nodes"' "$out"
commit="$(grep -o '"commit": "[^"]*"' "$out" | head -1 || true)"
echo "wrote $out (${commit:-no commit stamp})"
