#!/usr/bin/env bash
# Benchmark trajectory: run the Figure 10 reproduction with -json and write
# a dated BENCH_<date>.json (pads-bench/v1, internal/telemetry.BenchReport)
# at the repo root. Committing these files over time gives the project a
# machine-readable performance history — wall time, bytes/sec, allocations,
# and the runtime parse counters of docs/OBSERVABILITY.md per row.
#
# Usage: scripts/bench.sh [extra padsbench flags]
#   scripts/bench.sh                    # default corpus (2M records)
#   scripts/bench.sh -n 100000 -runs 5  # smaller, more runs
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_$(date +%Y-%m-%d).json"
go run ./cmd/padsbench -json "$@" >"$out"
echo "wrote $out"
