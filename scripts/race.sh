#!/usr/bin/env bash
# Concurrency gate for the record-sharded parallel engine (docs/PARALLEL.md):
# vet the whole module, then run every test under the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."
go vet ./...
go test -race ./...
