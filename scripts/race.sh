#!/usr/bin/env bash
# Concurrency gate for the record-sharded parallel engine (docs/PARALLEL.md)
# and the parse daemon (docs/ROBUSTNESS.md): vet the whole module, then run
# every test under the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."
go vet ./...
go test -race ./...
# The daemon is the most concurrent surface in the module (per-request
# goroutines, shared registry/tenants/metrics, drain vs in-flight): run its
# suite a second time so scheduling-dependent orders get another roll.
go test -race -count=2 ./internal/padsd
# The out-of-core executor races workers against commit fsyncs, cancel
# hooks, and progress callbacks: give its chaos tests a second roll too.
go test -race -count=2 ./internal/segment
