package pads_test

// End-to-end telemetry and error-locus tests: the loci recorded in parse
// descriptors (and surfaced by -stats / -trace) must be identical whether a
// source parses sequentially or record-sharded across workers — the parallel
// engine rebases each chunk's borrowed source with SetBase, so absolute byte
// offsets and 1-based record numbers in diagnostics must never betray the
// sharding (docs/PARALLEL.md, docs/OBSERVABILITY.md).

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"pads/internal/accum"
	"pads/internal/core"
	"pads/internal/padsrt"
	"pads/internal/telemetry"
	"pads/internal/value"
)

// collectLoci walks a parsed value tree and renders every erroneous node's
// diagnostic coordinates — type name, error count, first-error code, and the
// first error's span with absolute byte offsets and record numbers.
func collectLoci(v value.Value, out *[]string) {
	pd := v.PD()
	if pd.Nerr > 0 {
		*out = append(*out, fmt.Sprintf("%s nerr=%d %v @%s", v.TypeName(), pd.Nerr, pd.ErrCode, pd.Loc))
	}
	switch x := v.(type) {
	case *value.Struct:
		for _, f := range x.Fields {
			collectLoci(f, out)
		}
	case *value.Union:
		if x.Val != nil {
			collectLoci(x.Val, out)
		}
	case *value.Array:
		for _, e := range x.Elems {
			collectLoci(e, out)
		}
	case *value.Opt:
		if x.Val != nil {
			collectLoci(x.Val, out)
		}
	}
}

// TestParallelErrorLoci parses the raw Sirius corpus — which carries the
// documented error population — sequentially and record-sharded, then
// compares every erroneous node's locus. A chunk source whose SetBase
// rebasing drifted (byte offset or record number) would shift every locus in
// its shard.
func TestParallelErrorLoci(t *testing.T) {
	benchCorpus(nil)
	desc, err := core.CompileFile("testdata/sirius.pads")
	if err != nil {
		t.Fatal(err)
	}
	seqVal, err := desc.ParseAll(padsrt.NewBytesSource(siriusData))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	collectLoci(seqVal, &want)
	if len(want) == 0 {
		t.Fatal("corpus produced no erroneous loci; the test would prove nothing")
	}

	for _, workers := range []int{1, 4} {
		parVal, err := desc.ParseAllParallel(siriusData, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var got []string
		collectLoci(parVal, &got)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d erroneous loci, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: locus %d diverges from sequential:\n  got  %s\n  want %s",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestParallelTelemetryStats attaches a Stats sink to sequential and
// parallel accumulator runs over the same corpus and checks that the
// interpreter-level tallies — per-field-path error counts and union
// branch-selection histograms — are identical, and that the parallel run's
// per-worker rows account for every record exactly once.
func TestParallelTelemetryStats(t *testing.T) {
	benchCorpus(nil)
	desc, err := core.CompileFile("testdata/sirius.pads")
	if err != nil {
		t.Fatal(err)
	}
	cfg := accum.DefaultConfig()

	seq := telemetry.NewStats()
	desc.Observe(seq, nil)
	_, n, err := desc.AccumulateReader(bytes.NewReader(siriusData), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.FieldErrors) == 0 {
		t.Fatal("sequential run tallied no field errors; the corpus should have them")
	}

	par := telemetry.NewStats()
	desc.Observe(par, nil)
	_, pn, err := desc.AccumulateParallel(siriusData, nil, cfg, 4)
	desc.Observe(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pn != n {
		t.Fatalf("parallel parsed %d records, want %d", pn, n)
	}

	if !reflect.DeepEqual(par.FieldErrors, seq.FieldErrors) {
		t.Errorf("parallel FieldErrors = %v, want %v", par.FieldErrors, seq.FieldErrors)
	}
	if !reflect.DeepEqual(par.UnionChoices, seq.UnionChoices) {
		t.Errorf("parallel UnionChoices = %v, want %v", par.UnionChoices, seq.UnionChoices)
	}

	if len(par.Workers) == 0 {
		t.Fatal("parallel run recorded no worker rows")
	}
	var recs, chunkBytes uint64
	for _, w := range par.Workers {
		recs += w.Records
		chunkBytes += w.Bytes
	}
	if recs != uint64(n) {
		t.Errorf("worker rows account for %d records, want %d", recs, n)
	}
	if chunkBytes == 0 || chunkBytes > uint64(len(siriusData)) {
		t.Errorf("worker rows account for %d bytes, want within (0, %d]", chunkBytes, len(siriusData))
	}
	// The folded source counters must cover every record the workers parsed
	// (the header record adds one more on the sequential prefix).
	if par.Source.RecordsBegun < uint64(n) {
		t.Errorf("folded RecordsBegun = %d, want >= %d", par.Source.RecordsBegun, n)
	}
}
