package pads_test

// End-to-end profiler tests over the synthetic Sirius corpus: the parse-path
// profiler must attribute nearly all of the parse wall time to named
// description nodes, its per-worker histograms and counters must fold to the
// same result at any worker count, and the bounded-ring tracer must flush a
// partial final window when a fault-injected source truncates the run
// (docs/OBSERVABILITY.md).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pads/internal/core"
	"pads/internal/fault"
	"pads/internal/padsrt"
	"pads/internal/telemetry"
	"pads/internal/telemetry/prof"
)

// profiledRead parses data through the interpreter with a fresh profiler
// sampling every record and returns the snapshot.
func profiledRead(t *testing.T, desc *core.Description, data []byte) *prof.Profile {
	t.Helper()
	p := prof.New(prof.Options{})
	desc.ObserveProf(p)
	defer desc.ObserveProf(nil)
	s := padsrt.NewBytesSource(data, padsrt.WithProf(p))
	rr, err := desc.Records(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	for rr.More() {
		rr.Read()
	}
	if err := rr.Err(); err != nil {
		t.Fatal(err)
	}
	return p.Snapshot()
}

// TestProfilerSiriusAttribution runs the profiler over the raw Sirius corpus
// — error population included — and checks the acceptance bar: at least 95%
// of the profiled wall time attributed to named description node paths, with
// the paths rooted in the declarations the description actually names.
func TestProfilerSiriusAttribution(t *testing.T) {
	benchCorpus(nil)
	desc, err := core.CompileFile("testdata/sirius.pads")
	if err != nil {
		t.Fatal(err)
	}
	pr := profiledRead(t, desc, siriusData)

	if pr.Records == 0 || pr.Sampled != pr.Records {
		t.Fatalf("sampled %d of %d records, want full sampling", pr.Sampled, pr.Records)
	}
	if frac := pr.AttributedFrac(); frac < 0.95 {
		t.Errorf("attributed %.1f%% of wall time to nodes, want >= 95%%", frac*100)
	}
	if pr.Bytes != uint64(len(siriusData)) {
		t.Errorf("profiled %d bytes, want the whole %d-byte corpus", pr.Bytes, len(siriusData))
	}

	paths := make(map[string]prof.NodeStat, len(pr.Nodes))
	for _, n := range pr.Nodes {
		paths[n.Path] = n
		root := n.Path
		if i := strings.IndexByte(root, '.'); i >= 0 {
			root = root[:i]
		}
		if root != "summary_header_t" && root != "entry_t" {
			t.Errorf("node %q not rooted in a Sirius declaration", n.Path)
		}
	}
	// The union of the paper's walkthrough: the optional dib_ramp_t branch
	// fails speculatively on generated ramps, so its errors and the
	// alternative branch's count must both be visible.
	ramp, ok := paths["entry_t.header.ramp.ramp"]
	if !ok || ramp.Errors == 0 {
		t.Errorf("hot union branch entry_t.header.ramp.ramp missing or error-free: %+v", ramp)
	}
	if gen, ok := paths["entry_t.header.ramp.genRamp"]; !ok || gen.Count == 0 {
		t.Errorf("union branch entry_t.header.ramp.genRamp missing: %+v", gen)
	}
	if _, ok := paths["entry_t.events.[]"]; !ok {
		t.Error("array element node entry_t.events.[] missing")
	}
}

// deterministicView strips the timing quantities — which legitimately vary
// run to run — leaving the merge-order-invariant ones: record/byte/error
// totals, the record-size histogram, and per-node counts and bytes.
func deterministicView(t *testing.T, pr *prof.Profile) string {
	t.Helper()
	type nodeView struct {
		Path                string
		Count, Errors       uint64
		SelfBytes, CumBytes uint64
	}
	view := struct {
		Records, Sampled, Errored, Bytes uint64
		RecSize                          prof.Hist
		Nodes                            []nodeView
	}{pr.Records, pr.Sampled, pr.Errored, pr.Bytes, pr.RecSize, nil}
	for _, n := range pr.Nodes {
		view.Nodes = append(view.Nodes, nodeView{n.Path, n.Count, n.Errors, n.SelfBytes, n.CumBytes})
	}
	// Node order is self-time-sorted and thus timing-dependent; sort the
	// view by path instead.
	for i := 1; i < len(view.Nodes); i++ {
		for j := i; j > 0 && view.Nodes[j].Path < view.Nodes[j-1].Path; j-- {
			view.Nodes[j], view.Nodes[j-1] = view.Nodes[j-1], view.Nodes[j]
		}
	}
	b, err := json.MarshalIndent(view, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestProfilerParallelMergeDeterministic parses the raw corpus sequentially
// and record-sharded at several worker counts, each run with a fresh
// profiler, and requires the chunk-order fold to reproduce the sequential
// profile's deterministic quantities byte-for-byte — the same bar the
// parallel engine meets for accumulators and telemetry counters.
func TestProfilerParallelMergeDeterministic(t *testing.T) {
	benchCorpus(nil)
	desc, err := core.CompileFile("testdata/sirius.pads")
	if err != nil {
		t.Fatal(err)
	}
	want := deterministicView(t, profiledRead(t, desc, siriusData))

	for _, workers := range []int{1, 2, 4, 8} {
		p := prof.New(prof.Options{})
		desc.ObserveProf(p)
		if _, err := desc.ParseAllParallel(siriusData, nil, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		desc.ObserveProf(nil)
		got := deterministicView(t, p.Snapshot())
		if got != want {
			t.Errorf("workers=%d: merged profile diverges from sequential:\n got %s\nwant %s",
				workers, got, want)
		}
	}
}

// TestRingTracerFaultTruncation reproduces the satellite regression: a
// bounded-ring trace of a run that dies mid-stream (fault-injected
// truncation) must still flush its retained window on Close — before the
// fix, a ring that never wrapped was dropped silently, so truncated runs
// lost exactly the trace that would explain them.
func TestRingTracerFaultTruncation(t *testing.T) {
	benchCorpus(nil)
	desc, err := core.CompileFile("testdata/sirius.pads")
	if err != nil {
		t.Fatal(err)
	}

	// Truncate a few records in: far fewer events than the ring holds, so
	// Close must drain a partial window.
	const ringSize = 10_000
	cut := int64(bytes.IndexByte(siriusData[200:], '\n') + 201)
	var out bytes.Buffer
	tr := telemetry.NewRingTracerTo(ringSize, &out)
	desc.Observe(nil, tr)
	defer desc.Observe(nil, nil)

	fr := fault.NewReader(bytes.NewReader(siriusData), fault.Config{TruncateAt: cut})
	s := padsrt.NewSource(bufio.NewReader(fr))
	rr, err := desc.Records(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	for rr.More() {
		rr.Read()
	}
	if err := rr.Err(); err != nil {
		t.Fatal(err)
	}

	if out.Len() != 0 {
		t.Fatalf("ring tracer wrote %d bytes before Close", out.Len())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("Close drained no events from the partial window")
	}
	if len(lines) >= ringSize {
		t.Fatalf("%d events for a %d-byte truncated run; window was not partial", len(lines), cut)
	}
	sawRecordEnd := false
	for i, ln := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i+1, err, ln)
		}
		if ev["ev"] == "record_end" {
			sawRecordEnd = true
		}
	}
	if !sawRecordEnd {
		t.Error("drained window has no record_end event")
	}
	// Closing again must not duplicate the window.
	n := out.Len()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != n {
		t.Error("second Close re-drained the window")
	}
}
